//! A chunked row-shard matrix: the out-of-core counterpart of
//! [`FeatureMatrix`].
//!
//! [`ShardedMatrix`] stores rows in fixed-size shards (a power-of-two row
//! count per shard), behind the same `row(i)` / `push_row` / `extend_from`
//! / `truncate_rows` contract as [`FeatureMatrix`] — row addressing is one
//! shift and one mask. Hot loops that want contiguous memory iterate
//! shard-major via [`ShardedMatrix::shard_views`], and individual shards can
//! be spilled to disk ([`ShardedMatrix::spill_shard`]) and reloaded
//! ([`ShardedMatrix::load_shard`]) so encode→bin→train pipelines can run on
//! datasets larger than RAM. Spilled shards round-trip bit-exactly: cell
//! values are serialized as IEEE-754 bit patterns, never as decimal text.
//!
//! # Shard-size resolution
//!
//! The default shard size follows the workspace's one resolver pattern
//! (`frote_par::threads`, `frote_ml::set_default_split_mode`):
//!
//! 1. the `FROTE_SHARD_ROWS` environment variable (a positive power of
//!    two),
//! 2. the [`set_shard_rows`] process-default override,
//! 3. [`UNSHARDED_ROWS`] — one effectively unbounded shard, which keeps
//!    every default-configuration code path byte-identical to the
//!    contiguous [`FeatureMatrix`] plane.
//!
//! # Determinism
//!
//! The shard size partitions *row indices* (`shard = i >> shift`), so
//! consumers that reduce per-shard partials in fixed shard order (the
//! histogram and kNN planes) stay bit-identical at any `FROTE_THREADS`.
//! Whether they are also identical across *shard sizes* depends on the
//! arithmetic: integer-exact accumulations (class counts) are; true `f64`
//! chains are reduced with shard-agnostic block boundaries instead.

use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::encode::Encoder;
use crate::matrix::FeatureMatrix;
use crate::sync::{CacheCounters, RebuildReason, SyncOutcome};

/// The default shard size: one effectively unbounded shard (2^62 rows), so
/// an unconfigured process stores everything contiguously and behaves
/// byte-identically to the pre-sharding plane.
pub const UNSHARDED_ROWS: usize = 1 << 62;

/// Process-wide override set by [`set_shard_rows`] (0 = unset).
static SHARD_ROWS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

static SHARDS_BUILT: frote_obs::Counter = frote_obs::Counter::new("shard.built");
static SHARDS_SPILLED: frote_obs::Counter = frote_obs::Counter::new("shard.spilled");
static SHARDS_LOADED: frote_obs::Counter = frote_obs::Counter::new("shard.loaded");

/// Resolves the shard size (rows per shard) used by [`ShardedMatrix::new`]
/// and the shard-aware training-plane reductions:
///
/// 1. the `FROTE_SHARD_ROWS` environment variable (if set to a positive
///    power of two; anything else falls through),
/// 2. the [`set_shard_rows`] config override,
/// 3. [`UNSHARDED_ROWS`] (one shard — the contiguous default).
pub fn shard_rows() -> usize {
    if let Ok(v) = std::env::var("FROTE_SHARD_ROWS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 && n.is_power_of_two() {
                return n;
            }
        }
    }
    match SHARD_ROWS_OVERRIDE.load(Ordering::Relaxed) {
        0 => UNSHARDED_ROWS,
        n => n,
    }
}

/// Sets the config-level shard-size override, rounded up to the next power
/// of two (minimum 1). The `FROTE_SHARD_ROWS` environment variable still
/// takes precedence, mirroring `frote_par::set_threads`.
pub fn set_shard_rows(n: usize) {
    SHARD_ROWS_OVERRIDE.store(n.max(1).next_power_of_two(), Ordering::Relaxed);
}

/// Clears the [`set_shard_rows`] override (mainly for tests).
pub fn clear_shard_rows_override() {
    SHARD_ROWS_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Groups `indices` into maximal runs that land in the same shard of
/// `shard_rows` rows, preserving input order: each element of the result is
/// `(shard_id, range_into_indices)`. For sorted index lists (tree node
/// partitions, kNN member lists) every shard appears at most once, so
/// per-run partials merged in run order are merged in shard order.
///
/// # Panics
///
/// Panics if `shard_rows` is not a power of two.
pub fn shard_runs(indices: &[usize], shard_rows: usize) -> Vec<(usize, Range<usize>)> {
    assert!(shard_rows.is_power_of_two(), "shard_rows must be a power of two");
    let shift = shard_rows.trailing_zeros();
    let mut runs = Vec::new();
    let mut start = 0;
    while start < indices.len() {
        let shard = indices[start] >> shift;
        let mut end = start + 1;
        while end < indices.len() && indices[end] >> shift == shard {
            end += 1;
        }
        runs.push((shard, start..end));
        start = end;
    }
    runs
}

/// On-disk form of one spilled shard. Cells are hex-encoded IEEE-754 bit
/// patterns (16 hex digits per `f64`), so the round-trip is exact for every
/// value including `-0.0`, subnormals, and NaN payloads — decimal text
/// would not guarantee that through the vendored JSON number path.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardFile {
    width: usize,
    rows: usize,
    cells_hex: String,
}

fn cells_to_hex(data: &[f64]) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(data.len() * 16);
    for &x in data {
        write!(s, "{:016x}", x.to_bits()).expect("writing to a String cannot fail");
    }
    s
}

fn cells_from_hex(hex: &str, expect: usize) -> io::Result<Vec<f64>> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if hex.len() != expect * 16 {
        return Err(bad(format!("expected {} hex digits, found {}", expect * 16, hex.len())));
    }
    let mut out = Vec::with_capacity(expect);
    for i in 0..expect {
        let digits = &hex[i * 16..(i + 1) * 16];
        let bits = u64::from_str_radix(digits, 16)
            .map_err(|e| bad(format!("bad cell hex `{digits}`: {e}")))?;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

/// Which shard residency operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardIoOp {
    /// [`ShardedMatrix::spill_shard`] — writing the shard file.
    Spill,
    /// [`ShardedMatrix::load_shard`] — reading the shard file back.
    Load,
}

impl std::fmt::Display for ShardIoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardIoOp::Spill => "spill",
            ShardIoOp::Load => "load",
        })
    }
}

/// A typed spill/load failure: which operation, which shard, and the
/// rendered cause. The shard's residency is unchanged on failure (resident
/// shards stay resident, spilled shards stay spilled), so callers can retry
/// ([`ShardedMatrix::load_shard_retry`]) or degrade instead of aborting
/// training. The cause is carried as text because `io::Error` is neither
/// `Clone` nor comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIoError {
    /// The failed operation.
    pub op: ShardIoOp,
    /// The shard index it failed on.
    pub shard: usize,
    /// Rendered cause (the underlying I/O or parse error, or an injected
    /// fault's message).
    pub detail: String,
}

impl ShardIoError {
    fn io(op: ShardIoOp, shard: usize, err: &io::Error) -> ShardIoError {
        ShardIoError { op, shard, detail: err.to_string() }
    }
}

impl std::fmt::Display for ShardIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} {} failed: {}", self.shard, self.op, self.detail)
    }
}

impl std::error::Error for ShardIoError {}

impl From<ShardIoError> for io::Error {
    fn from(err: ShardIoError) -> io::Error {
        io::Error::other(err.to_string())
    }
}

/// Shard spill/load attempts retried after a [`ShardIoError`].
static SHARD_IO_RETRIES: frote_obs::Counter =
    frote_obs::Counter::thread_variant("shard.io_retries");

/// One shard: resident in memory, or spilled to a file on disk.
#[derive(Debug, Clone)]
enum Shard {
    Resident(FeatureMatrix),
    Spilled { path: PathBuf, rows: usize },
}

impl Shard {
    fn rows(&self) -> usize {
        match self {
            Shard::Resident(m) => m.n_rows(),
            Shard::Spilled { rows, .. } => *rows,
        }
    }
}

/// A dense row-major `f64` matrix chunked into fixed-size row shards. See
/// the [module docs](self) for the layout and determinism story.
///
/// # Example
///
/// ```
/// use frote_data::sharded::ShardedMatrix;
/// let mut m = ShardedMatrix::with_shard_rows(2, 4);
/// for i in 0..10 {
///     m.push_row(&[i as f64, -(i as f64)]);
/// }
/// assert_eq!(m.n_rows(), 10);
/// assert_eq!(m.n_shards(), 3); // 4 + 4 + 2 rows
/// assert_eq!(m.row(5), &[5.0, -5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedMatrix {
    shards: Vec<Shard>,
    width: usize,
    shard_rows: usize,
    shift: u32,
    rows: usize,
}

impl ShardedMatrix {
    /// Creates an empty matrix whose rows will have `width` columns, with
    /// the shard size from the [`shard_rows`] resolver.
    pub fn new(width: usize) -> Self {
        Self::with_shard_rows(width, shard_rows())
    }

    /// [`ShardedMatrix::new`] with an explicit shard size.
    ///
    /// # Panics
    ///
    /// Panics if `shard_rows` is not a power of two.
    pub fn with_shard_rows(width: usize, shard_rows: usize) -> Self {
        assert!(shard_rows.is_power_of_two(), "shard_rows must be a power of two");
        ShardedMatrix {
            shards: Vec::new(),
            width,
            shard_rows,
            shift: shard_rows.trailing_zeros(),
            rows: 0,
        }
    }

    /// Builds a sharded copy of `m` using the resolver's shard size.
    pub fn from_matrix(m: &FeatureMatrix) -> Self {
        let mut out = Self::new(m.width());
        out.extend_from(m);
        out
    }

    /// Assembles a matrix directly from per-shard storage (the parallel
    /// encode path): every shard except the last must hold exactly
    /// `shard_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `shard_rows` is not a power of two, any shard's width
    /// differs from `width`, or an interior shard is not exactly full.
    pub fn from_shards(width: usize, shard_rows: usize, shards: Vec<FeatureMatrix>) -> Self {
        assert!(shard_rows.is_power_of_two(), "shard_rows must be a power of two");
        let mut rows = 0;
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(shard.width(), width, "shard {s} width mismatch");
            if s + 1 < shards.len() {
                assert_eq!(shard.n_rows(), shard_rows, "interior shard {s} must be full");
            } else {
                assert!(shard.n_rows() <= shard_rows, "final shard {s} overflows the shard size");
            }
            rows += shard.n_rows();
        }
        SHARDS_BUILT.add(shards.len() as u64);
        ShardedMatrix {
            shards: shards.into_iter().map(Shard::Resident).collect(),
            width,
            shard_rows,
            shift: shard_rows.trailing_zeros(),
            rows,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.shard_rows - 1
    }

    /// Row stride (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows across all shards.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rows per shard (a power of two).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards currently backing the matrix.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that holds row `i` (pure index arithmetic; `i` need not be
    /// in bounds).
    #[inline]
    pub fn shard_of(&self, i: usize) -> usize {
        i >> self.shift
    }

    /// The global row range covered by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()`.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        assert!(s < self.shards.len(), "shard {s} out of bounds ({} shards)", self.shards.len());
        let start = s << self.shift;
        start..start + self.shards[s].rows()
    }

    /// Whether shard `s` is currently spilled to disk.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()`.
    pub fn is_spilled(&self, s: usize) -> bool {
        assert!(s < self.shards.len(), "shard {s} out of bounds ({} shards)", self.shards.len());
        matches!(self.shards[s], Shard::Spilled { .. })
    }

    fn resident(&self, s: usize) -> &FeatureMatrix {
        match &self.shards[s] {
            Shard::Resident(m) => m,
            Shard::Spilled { .. } => {
                panic!("shard {s} is spilled to disk; call load_shard({s}) before reading it")
            }
        }
    }

    /// Borrowed view of shard `s` — a contiguous [`FeatureMatrix`] whose
    /// local row `j` is global row `shard_range(s).start + j`. Hot loops
    /// iterate these instead of paying the shift/mask per cell.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()` or the shard is spilled.
    pub fn shard_view(&self, s: usize) -> &FeatureMatrix {
        assert!(s < self.shards.len(), "shard {s} out of bounds ({} shards)", self.shards.len());
        self.resident(s)
    }

    /// Iterator over `(global_row_range, shard)` pairs in shard order.
    ///
    /// # Panics
    ///
    /// The iterator panics lazily on the first spilled shard it reaches.
    pub fn shard_views(&self) -> impl Iterator<Item = (Range<usize>, &FeatureMatrix)> + '_ {
        (0..self.shards.len()).map(move |s| (self.shard_range(s), self.resident(s)))
    }

    /// Row `i` as a borrowed slice view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()` or the owning shard is spilled.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        self.resident(i >> self.shift).row(i & self.mask())
    }

    /// The tail shard, opening a fresh one when the matrix is empty or the
    /// current tail is full.
    fn tail_mut(&mut self) -> &mut FeatureMatrix {
        let tail_full =
            self.rows & self.mask() == 0 && self.rows >> self.shift == self.shards.len();
        if self.shards.is_empty() || tail_full {
            self.shards.push(Shard::Resident(FeatureMatrix::new(self.width)));
            SHARDS_BUILT.inc();
        }
        match self.shards.last_mut().expect("tail shard exists") {
            Shard::Resident(m) => m,
            Shard::Spilled { .. } => {
                panic!("tail shard is spilled to disk; load it before appending rows")
            }
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != width()` or the tail shard is spilled.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row length must equal the matrix width");
        self.tail_mut().push_row(row);
        self.rows += 1;
    }

    /// Appends one row written in place, like
    /// [`FeatureMatrix::push_row_with`].
    ///
    /// # Panics
    ///
    /// Panics if `fill` appends anything other than `width()` values, or
    /// the tail shard is spilled.
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut Vec<f64>)) {
        self.tail_mut().push_row_with(fill);
        self.rows += 1;
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the tail shard is spilled.
    pub fn extend_from(&mut self, other: &FeatureMatrix) {
        assert_eq!(self.width, other.width(), "matrix widths must match");
        for row in other.rows() {
            self.tail_mut().push_row(row);
            self.rows += 1;
        }
    }

    /// Drops all rows past the first `rows` (no-op when already shorter),
    /// releasing shards that become empty.
    ///
    /// # Panics
    ///
    /// Panics if the cut lands inside a spilled shard (load it first);
    /// whole spilled shards past the cut are dropped without loading.
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows >= self.rows {
            return;
        }
        let boundary = rows >> self.shift;
        let within = rows & self.mask();
        self.shards.truncate(if within == 0 { boundary } else { boundary + 1 });
        if within != 0 {
            match self.shards.last_mut().expect("boundary shard exists") {
                Shard::Resident(m) => m.truncate_rows(within),
                Shard::Spilled { .. } => panic!(
                    "cannot truncate to row {rows}: the cut lands inside spilled shard {boundary}"
                ),
            }
        }
        self.rows = rows;
    }

    /// Clears all rows and shards, keeping the width and shard size.
    pub fn clear(&mut self) {
        self.shards.clear();
        self.rows = 0;
    }

    /// Flattens into one contiguous [`FeatureMatrix`] (differential tests
    /// and consumers that need the dense plane).
    ///
    /// # Panics
    ///
    /// Panics if any shard is spilled.
    pub fn to_matrix(&self) -> FeatureMatrix {
        let mut out = FeatureMatrix::with_capacity(self.width, self.rows);
        for s in 0..self.shards.len() {
            out.extend_from(self.resident(s));
        }
        out
    }

    /// Serializes shard `s` into `dir` (as `shard-<s>.json`, bit-exact; see
    /// the private `ShardFile` format) and releases its memory. Returns
    /// `false` when the shard was already spilled.
    ///
    /// # Errors
    ///
    /// [`ShardIoError`] on any write failure (or an injected
    /// `data.shard.spill` fault); the shard stays resident on failure.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()`.
    pub fn spill_shard(&mut self, s: usize, dir: &Path) -> Result<bool, ShardIoError> {
        assert!(s < self.shards.len(), "shard {s} out of bounds ({} shards)", self.shards.len());
        let Shard::Resident(m) = &self.shards[s] else {
            return Ok(false);
        };
        frote_faults::point("data.shard.spill").map_err(|f| ShardIoError {
            op: ShardIoOp::Spill,
            shard: s,
            detail: f.to_string(),
        })?;
        let file = ShardFile {
            width: self.width,
            rows: m.n_rows(),
            cells_hex: cells_to_hex(m.as_slice()),
        };
        let path = dir.join(format!("shard-{s}.json"));
        let text = serde_json::to_string(&file).map_err(|e| ShardIoError {
            op: ShardIoOp::Spill,
            shard: s,
            detail: e.to_string(),
        })?;
        std::fs::write(&path, text).map_err(|e| ShardIoError::io(ShardIoOp::Spill, s, &e))?;
        let rows = m.n_rows();
        self.shards[s] = Shard::Spilled { path, rows };
        SHARDS_SPILLED.inc();
        Ok(true)
    }

    /// [`ShardedMatrix::spill_shard`] retried up to `attempts` times, for
    /// transiently failing spill targets (counted in `shard.io_retries`).
    ///
    /// # Errors
    ///
    /// The last [`ShardIoError`] when every attempt failed.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()` or `attempts == 0`.
    pub fn spill_shard_retry(
        &mut self,
        s: usize,
        dir: &Path,
        attempts: usize,
    ) -> Result<bool, ShardIoError> {
        assert!(attempts > 0, "at least one attempt is required");
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                SHARD_IO_RETRIES.inc();
            }
            match self.spill_shard(s, dir) {
                Ok(done) => return Ok(done),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("attempts > 0 implies at least one error"))
    }

    /// Loads shard `s` back from its spill file. Returns `false` when the
    /// shard was already resident. The spill file is left in place.
    ///
    /// # Errors
    ///
    /// [`ShardIoError`] when the file is missing, does not parse back to a
    /// shard of the recorded shape, or an injected `data.shard.load` fault
    /// fires; the shard stays spilled on failure.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()`.
    pub fn load_shard(&mut self, s: usize) -> Result<bool, ShardIoError> {
        assert!(s < self.shards.len(), "shard {s} out of bounds ({} shards)", self.shards.len());
        let Shard::Spilled { path, rows } = &self.shards[s] else {
            return Ok(false);
        };
        let bad = |msg: String| ShardIoError { op: ShardIoOp::Load, shard: s, detail: msg };
        frote_faults::point("data.shard.load").map_err(|f| bad(f.to_string()))?;
        let text =
            std::fs::read_to_string(path).map_err(|e| ShardIoError::io(ShardIoOp::Load, s, &e))?;
        let file: ShardFile = serde_json::from_str(&text).map_err(|e| bad(e.to_string()))?;
        if file.width != self.width || file.rows != *rows {
            return Err(bad(format!(
                "spill file shape {}x{} does not match shard {s} ({}x{})",
                file.rows, file.width, rows, self.width
            )));
        }
        let cells = cells_from_hex(&file.cells_hex, file.rows * file.width)
            .map_err(|e| ShardIoError::io(ShardIoOp::Load, s, &e))?;
        self.shards[s] = Shard::Resident(FeatureMatrix::from_raw(self.width, cells));
        SHARDS_LOADED.inc();
        Ok(true)
    }

    /// [`ShardedMatrix::load_shard`] retried up to `attempts` times, for
    /// transiently failing spill storage (counted in `shard.io_retries`).
    ///
    /// # Errors
    ///
    /// The last [`ShardIoError`] when every attempt failed.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()` or `attempts == 0`.
    pub fn load_shard_retry(&mut self, s: usize, attempts: usize) -> Result<bool, ShardIoError> {
        assert!(attempts > 0, "at least one attempt is required");
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                SHARD_IO_RETRIES.inc();
            }
            match self.load_shard(s) {
                Ok(done) => return Ok(done),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("attempts > 0 implies at least one error"))
    }
}

fn sharded_cache_counters() -> &'static CacheCounters {
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CacheCounters::new("sharded_cache"))
}

/// The sharded twin of [`crate::EncodedCache`]: an incrementally maintained
/// encoded view of a growing dataset whose backing store is a
/// [`ShardedMatrix`] — the encode plane for datasets past RAM (cold shards
/// can be spilled between syncs). Sync semantics match `EncodedCache`
/// exactly: append while the fitted parameters hold, rebuild otherwise,
/// with [`ShardedCache::truncate`] marking the fit stale for re-checking.
#[derive(Debug, Clone)]
pub struct ShardedCache {
    encoder: Encoder,
    matrix: ShardedMatrix,
    stale_fit: bool,
}

impl ShardedCache {
    /// Fits the encoder to `ds` and encodes every row, shard-parallel.
    pub fn fit(ds: &Dataset) -> ShardedCache {
        let encoder = Encoder::fit(ds);
        let matrix = encoder.encode_dataset_sharded(ds);
        ShardedCache { encoder, matrix, stale_fit: false }
    }

    /// Brings the cache in sync with `ds` (append-only growth), returning
    /// how it was updated. See [`crate::EncodedCache::sync`].
    pub fn sync(&mut self, ds: &Dataset) -> SyncOutcome {
        let outcome = self.sync_inner(ds);
        sharded_cache_counters().record_sync(&outcome);
        outcome
    }

    fn sync_inner(&mut self, ds: &Dataset) -> SyncOutcome {
        if !self.stale_fit && ds.n_rows() == self.matrix.n_rows() {
            return SyncOutcome::Unchanged;
        }
        let was_stale = self.stale_fit;
        self.stale_fit = false;
        let refit = Encoder::fit(ds);
        if refit == self.encoder && frote_faults::point("data.cache.sharded.append").is_ok() {
            let appended = ds.n_rows() - self.matrix.n_rows();
            self.encoder.encode_append_sharded(ds, &mut self.matrix);
            SyncOutcome::Appended { rows: appended }
        } else if refit == self.encoder {
            // An injected fault poisoned the append fast path: degrade to a
            // full rebuild — bit-identical output, only the cost changes.
            self.matrix = self.encoder.encode_dataset_sharded(ds);
            SyncOutcome::Rebuilt(RebuildReason::Injected)
        } else {
            self.encoder = refit;
            self.matrix = self.encoder.encode_dataset_sharded(ds);
            SyncOutcome::Rebuilt(if was_stale {
                RebuildReason::StaleFit
            } else {
                RebuildReason::FitChanged
            })
        }
    }

    /// Drops cached encodings past the first `rows` rows; the next
    /// [`ShardedCache::sync`] re-checks the encoder fit.
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.matrix.n_rows() {
            self.stale_fit = true;
            sharded_cache_counters().record_truncate(self.matrix.n_rows() - rows);
        }
        self.matrix.truncate_rows(rows);
    }

    /// The current encoder fit.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The sharded encoded rows, one per dataset row as of the last sync.
    pub fn matrix(&self) -> &ShardedMatrix {
        &self.matrix
    }

    /// Mutable access to the backing matrix (to spill or reload shards
    /// between syncs).
    pub fn matrix_mut(&mut self) -> &mut ShardedMatrix {
        &mut self.matrix
    }

    /// Spills shard `s` of the cached encoding to `dir`; see
    /// [`ShardedMatrix::spill_shard`].
    ///
    /// # Errors
    ///
    /// [`ShardIoError`] from the underlying spill; the shard stays resident.
    pub fn spill_shard(&mut self, s: usize, dir: &std::path::Path) -> Result<bool, ShardIoError> {
        self.matrix.spill_shard(s, dir)
    }

    /// Ensures shard `s` is resident again, retrying up to `attempts`
    /// times; see [`ShardedMatrix::load_shard_retry`].
    ///
    /// # Errors
    ///
    /// The last [`ShardIoError`] when every attempt failed; the shard stays
    /// spilled and the cache is otherwise untouched.
    pub fn load_shard_retry(&mut self, s: usize, attempts: usize) -> Result<bool, ShardIoError> {
        self.matrix.load_shard_retry(s, attempts)
    }
}

/// Test support: safely rebinding `FROTE_SHARD_ROWS` within one process.
///
/// Mirrors `frote_par::test_support`. When a test rebinds both
/// `FROTE_THREADS` and `FROTE_SHARD_ROWS`, take the thread binding
/// outermost so the two process-wide locks are always acquired in one
/// order.
pub mod test_support {
    use std::sync::Mutex;

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Restores the prior `FROTE_SHARD_ROWS` binding on drop, so a
    /// panicking closure cannot leak the override into later tests of the
    /// same binary.
    struct Restore(Option<String>);

    impl Drop for Restore {
        fn drop(&mut self) {
            match self.0.take() {
                Some(v) => std::env::set_var("FROTE_SHARD_ROWS", v),
                None => std::env::remove_var("FROTE_SHARD_ROWS"),
            }
        }
    }

    /// Runs `f` with `FROTE_SHARD_ROWS` bound to `value` (restored
    /// afterwards, even on panic). Calls serialize on a process-wide lock.
    pub fn with_shard_rows_var<R>(value: &str, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = Restore(std::env::var("FROTE_SHARD_ROWS").ok());
        std::env::set_var("FROTE_SHARD_ROWS", value);
        f()
    }

    /// [`with_shard_rows_var`] for a numeric shard size.
    pub fn with_shard_rows<R>(n: usize, f: impl FnOnce() -> R) -> R {
        with_shard_rows_var(&n.to_string(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn filled(width: usize, shard_rows: usize, n: usize) -> (ShardedMatrix, FeatureMatrix) {
        let mut sharded = ShardedMatrix::with_shard_rows(width, shard_rows);
        let mut dense = FeatureMatrix::new(width);
        for i in 0..n {
            let row: Vec<f64> = (0..width).map(|j| (i * width + j) as f64 * 0.5).collect();
            sharded.push_row(&row);
            dense.push_row(&row);
        }
        (sharded, dense)
    }

    fn assert_same(sharded: &ShardedMatrix, dense: &FeatureMatrix) {
        assert_eq!(sharded.n_rows(), dense.n_rows());
        assert_eq!(sharded.width(), dense.width());
        for i in 0..dense.n_rows() {
            assert_eq!(sharded.row(i), dense.row(i), "row {i}");
        }
        assert_eq!(&sharded.to_matrix(), dense);
    }

    #[test]
    fn resolver_priority() {
        test_support::with_shard_rows_var("64", || {
            clear_shard_rows_override();
            assert_eq!(shard_rows(), 64, "env wins");
            set_shard_rows(128);
            assert_eq!(shard_rows(), 64, "env beats override");
        });
        test_support::with_shard_rows_var("not-a-number", || {
            set_shard_rows(100);
            assert_eq!(shard_rows(), 128, "override rounds up to a power of two");
            clear_shard_rows_override();
            assert_eq!(shard_rows(), UNSHARDED_ROWS, "default is one unbounded shard");
        });
        test_support::with_shard_rows_var("48", || {
            clear_shard_rows_override();
            assert_eq!(shard_rows(), UNSHARDED_ROWS, "non-power-of-two env falls through");
        });
        assert!(UNSHARDED_ROWS.is_power_of_two());
    }

    #[test]
    fn push_row_and_shard_boundaries() {
        let (sharded, dense) = filled(3, 4, 11);
        assert_same(&sharded, &dense);
        assert_eq!(sharded.n_shards(), 3);
        assert_eq!(sharded.shard_range(0), 0..4);
        assert_eq!(sharded.shard_range(2), 8..11);
        assert_eq!(sharded.shard_of(7), 1);
        let views: Vec<_> = sharded.shard_views().collect();
        assert_eq!(views.len(), 3);
        assert_eq!(views[1].0, 4..8);
        assert_eq!(views[1].1.row(0), dense.row(4));
    }

    #[test]
    fn default_shard_size_is_one_shard() {
        let mut m = ShardedMatrix::with_shard_rows(2, UNSHARDED_ROWS);
        for i in 0..100 {
            m.push_row(&[i as f64, 0.0]);
        }
        assert_eq!(m.n_shards(), 1, "unconfigured matrices stay contiguous");
    }

    #[test]
    fn extend_truncate_clear_mirror_feature_matrix() {
        let (mut sharded, mut dense) = filled(2, 4, 6);
        let extra = FeatureMatrix::from_rows(vec![vec![100.0, 101.0], vec![102.0, 103.0]]);
        sharded.extend_from(&extra);
        dense.extend_from(&extra);
        assert_same(&sharded, &dense);

        sharded.truncate_rows(50); // no-op
        assert_eq!(sharded.n_rows(), 8);
        sharded.truncate_rows(5); // cut inside shard 1
        dense.truncate_rows(5);
        assert_same(&sharded, &dense);
        assert_eq!(sharded.n_shards(), 2);
        sharded.truncate_rows(4); // cut exactly on a shard boundary
        dense.truncate_rows(4);
        assert_same(&sharded, &dense);
        assert_eq!(sharded.n_shards(), 1);
        sharded.truncate_rows(0);
        assert_eq!(sharded.n_shards(), 0);
        assert!(sharded.is_empty());

        sharded.push_row(&[7.0, 8.0]);
        assert_eq!(sharded.row(0), &[7.0, 8.0]);
        sharded.clear();
        assert!(sharded.is_empty());
        assert_eq!(sharded.width(), 2);
    }

    #[test]
    fn push_row_with_and_from_matrix() {
        let mut m = ShardedMatrix::with_shard_rows(2, 2);
        m.push_row_with(|buf| buf.extend_from_slice(&[1.0, 2.0]));
        assert_eq!(m.row(0), &[1.0, 2.0]);

        let dense = FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let sharded = ShardedMatrix::from_matrix(&dense);
        assert_same(&sharded, &dense);
    }

    #[test]
    fn from_shards_assembles_and_checks_shape() {
        let a = FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let b = FeatureMatrix::from_rows(vec![vec![3.0]]);
        let m = ShardedMatrix::from_shards(1, 2, vec![a, b]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.row(2), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "interior shard 0 must be full")]
    fn from_shards_rejects_short_interior_shard() {
        let a = FeatureMatrix::from_rows(vec![vec![1.0]]);
        let b = FeatureMatrix::from_rows(vec![vec![2.0]]);
        ShardedMatrix::from_shards(1, 2, vec![a, b]);
    }

    #[test]
    fn spill_and_load_round_trip_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("frote-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Values decimal text could mangle: -0.0, NaN payloads, subnormals.
        let tricky = [
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_dead_beef_0001),
            f64::MIN_POSITIVE / 8.0,
            f64::MAX,
            0.1 + 0.2,
        ];
        let mut m = ShardedMatrix::with_shard_rows(2, 2);
        for (i, &x) in tricky.iter().enumerate() {
            m.push_row(&[x, i as f64]);
        }
        let before = m.to_matrix();
        assert!(m.spill_shard(0, &dir).unwrap());
        assert!(m.spill_shard(1, &dir).unwrap());
        assert!(!m.spill_shard(1, &dir).unwrap(), "already spilled");
        assert!(m.is_spilled(0));
        assert!(m.load_shard(0).unwrap());
        assert!(m.load_shard(1).unwrap());
        assert!(!m.load_shard(1).unwrap(), "already resident");
        let after = m.to_matrix();
        assert_eq!(before.n_rows(), after.n_rows());
        let bits =
            |m: &FeatureMatrix| -> Vec<u64> { m.as_slice().iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&before), bits(&after), "round-trip must be bit-exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "spilled to disk")]
    fn reading_a_spilled_shard_panics() {
        let dir = std::env::temp_dir().join(format!("frote-shard-panic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut m, _) = filled(1, 2, 4);
        m.spill_shard(0, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        m.row(0);
    }

    #[test]
    #[should_panic(expected = "lands inside spilled shard")]
    fn truncating_inside_a_spilled_shard_panics() {
        let dir = std::env::temp_dir().join(format!("frote-shard-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut m, _) = filled(1, 4, 8);
        m.spill_shard(0, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        m.truncate_rows(2);
    }

    #[test]
    fn truncate_drops_whole_spilled_shards_without_loading() {
        let dir = std::env::temp_dir().join(format!("frote-shard-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut m, _) = filled(1, 4, 12);
        m.spill_shard(2, &dir).unwrap();
        m.truncate_rows(8); // drops the spilled tail shard entirely
        assert_eq!(m.n_shards(), 2);
        assert_eq!(m.row(7), &[3.5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row length must equal the matrix width")]
    fn push_wrong_width_panics() {
        ShardedMatrix::with_shard_rows(2, 4).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_oob_panics() {
        ShardedMatrix::with_shard_rows(2, 4).row(0);
    }

    #[test]
    fn shard_runs_groups_in_order() {
        assert_eq!(shard_runs(&[], 4), vec![]);
        assert_eq!(shard_runs(&[0, 1, 3], 4), vec![(0, 0..3)]);
        assert_eq!(
            shard_runs(&[0, 2, 5, 6, 8, 9, 15], 4),
            vec![(0, 0..2), (1, 2..4), (2, 4..6), (3, 6..7)]
        );
        // Unsorted lists produce order-preserving runs, one per transition.
        assert_eq!(shard_runs(&[5, 0], 4), vec![(1, 0..1), (0, 1..2)]);
    }

    #[test]
    fn sharded_cache_matches_encoded_cache_semantics() {
        use crate::Schema;
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("c", vec!["u".into(), "v".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(1.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(3.0), Value::Cat(1)], 1).unwrap();

        let mut cache = ShardedCache::fit(&ds);
        assert_eq!(cache.sync(&ds), SyncOutcome::Unchanged);
        assert_eq!(cache.matrix().to_matrix(), cache.encoder().encode_dataset(&ds));

        // A row that moves the numeric stats forces a rebuild.
        ds.push_row(&[Value::Num(100.0), Value::Cat(0)], 0).unwrap();
        assert_eq!(cache.sync(&ds), SyncOutcome::Rebuilt(RebuildReason::FitChanged));
        assert_eq!(cache.matrix().to_matrix(), cache.encoder().encode_dataset(&ds));

        // Rollback marks the fit stale; the next sync restores the old fit.
        cache.truncate(2);
        assert_eq!(cache.matrix().n_rows(), 2);
        let prefix = {
            let mut p = Dataset::new(ds.schema().clone());
            for i in 0..2 {
                let row: Vec<Value> = (0..ds.n_features()).map(|j| ds.cell(i, j)).collect();
                p.push_row(&row, ds.labels()[i]).unwrap();
            }
            p
        };
        assert_eq!(cache.sync(&prefix), SyncOutcome::Rebuilt(RebuildReason::StaleFit));
        assert_eq!(cache.encoder(), &Encoder::fit(&prefix));
        assert_eq!(cache.matrix().to_matrix(), cache.encoder().encode_dataset(&prefix));
    }

    #[test]
    fn sharded_cache_appends_under_small_shards() {
        use crate::Schema;
        test_support::with_shard_rows(2, || {
            let schema = Schema::builder("y", vec!["a".into(), "b".into()])
                .categorical("k", vec!["p".into(), "q".into()])
                .build();
            let mut ds = Dataset::new(schema);
            ds.push_row(&[Value::Cat(0)], 0).unwrap();
            let mut cache = ShardedCache::fit(&ds);
            for i in 0..5 {
                ds.push_row(&[Value::Cat((i % 2) as u32)], 1).unwrap();
            }
            assert_eq!(cache.sync(&ds), SyncOutcome::Appended { rows: 5 });
            assert_eq!(cache.matrix().n_shards(), 3, "6 rows at 2 rows/shard");
            assert_eq!(cache.matrix().to_matrix(), cache.encoder().encode_dataset(&ds));
        });
    }

    #[test]
    fn injected_load_faults_are_typed_and_retryable() {
        let dir = std::env::temp_dir().join(format!("frote-shard-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut m, dense) = filled(2, 2, 4);
        m.spill_shard(0, &dir).unwrap();
        m.spill_shard(1, &dir).unwrap();
        // Every load fails with the typed error while the fault is armed,
        // and the shard's residency is untouched.
        frote_faults::test_support::with_spec(Some("data.shard.load:err:1000:4"), || {
            let err = m.load_shard(0).unwrap_err();
            assert_eq!(err.op, ShardIoOp::Load);
            assert_eq!(err.shard, 0);
            assert!(err.detail.contains("injected fault at data.shard.load"), "{err}");
            assert!(m.is_spilled(0), "failed load must leave the shard spilled");
            let err = m.load_shard_retry(0, 3).unwrap_err();
            assert!(err.to_string().contains("shard 0 load failed"), "{err}");
        });
        // At 500‰ the firing set has gaps, so a bounded retry gets through
        // and the recovered rows are bit-exact.
        frote_faults::test_support::with_spec(Some("data.shard.load:err:500:4"), || {
            assert!(m.load_shard_retry(0, 20).unwrap());
            assert!(m.load_shard_retry(1, 20).unwrap());
        });
        assert_same(&m, &dense);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_spill_faults_leave_the_shard_resident() {
        let dir = std::env::temp_dir().join(format!("frote-shard-sfault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut m, dense) = filled(1, 2, 4);
        frote_faults::test_support::with_spec(Some("data.shard.spill:err:1000:4"), || {
            let err = m.spill_shard(0, &dir).unwrap_err();
            assert_eq!((err.op, err.shard), (ShardIoOp::Spill, 0));
            assert!(!m.is_spilled(0));
        });
        // With 500‰ gaps a bounded retry spills successfully.
        frote_faults::test_support::with_spec(Some("data.shard.spill:err:500:4"), || {
            assert!(m.spill_shard_retry(0, &dir, 20).unwrap());
        });
        m.load_shard(0).unwrap();
        assert_same(&m, &dense);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_append_fault_degrades_sharded_cache_to_rebuild() {
        use crate::Schema;
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        let mut cache = ShardedCache::fit(&ds);
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        frote_faults::test_support::with_spec(Some("data.cache.sharded.append:err:1000:2"), || {
            assert_eq!(cache.sync(&ds), SyncOutcome::Rebuilt(RebuildReason::Injected));
        });
        // Graceful degradation: the rebuilt cache is bit-identical to the
        // append path's result.
        assert_eq!(cache.matrix().to_matrix(), cache.encoder().encode_dataset(&ds));
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        assert_eq!(cache.sync(&ds), SyncOutcome::Appended { rows: 1 }, "fault cleared");
    }
}
