//! Columnar storage for one feature.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// One feature column of a [`crate::Dataset`].
///
/// Stored densely and typed so coverage scans and statistics avoid per-cell
/// branching on [`Value`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Dense numeric column.
    Numeric(Vec<f64>),
    /// Dense categorical column of vocabulary indices.
    Categorical(Vec<u32>),
}

impl Column {
    /// Creates an empty column of the same type.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::Numeric(_) => Column::Numeric(Vec::new()),
            Column::Categorical(_) => Column::Categorical(Vec::new()),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(v) => v.len(),
        }
    }

    /// Whether the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Numeric(v) => Value::Num(v[i]),
            Column::Categorical(v) => Value::Cat(v[i]),
        }
    }

    /// Appends a value.
    ///
    /// # Panics
    ///
    /// Panics if the value's variant does not match the column type.
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (Column::Numeric(v), Value::Num(x)) => v.push(x),
            (Column::Categorical(v), Value::Cat(c)) => v.push(c),
            (col, value) => panic!(
                "value {value:?} does not match column type {}",
                match col {
                    Column::Numeric(_) => "numeric",
                    Column::Categorical(_) => "categorical",
                }
            ),
        }
    }

    /// Appends the cells of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the column types differ.
    pub fn extend_from(&mut self, other: &Column) {
        match (self, other) {
            (Column::Numeric(a), Column::Numeric(b)) => a.extend_from_slice(b),
            (Column::Categorical(a), Column::Categorical(b)) => a.extend_from_slice(b),
            _ => panic!("column type mismatch in extend_from"),
        }
    }

    /// Gathers the cells at `indices` into a new column (cells may repeat).
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical(v) => Column::Categorical(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Numeric cells, or `None` for categorical columns.
    pub fn as_numeric(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(v) => Some(v),
            Column::Categorical(_) => None,
        }
    }

    /// Categorical cells, or `None` for numeric columns.
    pub fn as_categorical(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical(v) => Some(v),
            Column::Numeric(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_value() {
        let mut c = Column::Numeric(Vec::new());
        c.push(Value::Num(1.0));
        c.push(Value::Num(2.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Num(2.0));
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match column type")]
    fn push_type_mismatch_panics() {
        let mut c = Column::Categorical(Vec::new());
        c.push(Value::Num(1.0));
    }

    #[test]
    fn gather_repeats_and_reorders() {
        let c = Column::Categorical(vec![5, 6, 7]);
        let g = c.gather(&[2, 0, 2]);
        assert_eq!(g.as_categorical().unwrap(), &[7, 5, 7]);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Column::Numeric(vec![1.0]);
        a.extend_from(&Column::Numeric(vec![2.0, 3.0]));
        assert_eq!(a.as_numeric().unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn extend_from_mismatch_panics() {
        let mut a = Column::Numeric(vec![1.0]);
        a.extend_from(&Column::Categorical(vec![0]));
    }

    #[test]
    fn empty_like_preserves_type() {
        assert_eq!(Column::Categorical(vec![1]).empty_like(), Column::Categorical(vec![]));
        assert_eq!(Column::Numeric(vec![1.0]).empty_like(), Column::Numeric(vec![]));
    }
}
