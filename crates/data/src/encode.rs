//! Feature encoding: standardized numeric + one-hot categorical.
//!
//! Linear models (`frote-ml::logreg`) and the online-learning selection proxy
//! operate on dense `f64` vectors. [`Encoder`] fits column means/stds on a
//! training dataset and then maps any schema-compatible row to a vector:
//! numeric columns are z-scored (constant columns map to 0), categorical
//! columns expand to one-hot blocks.

use crate::column::Column;
use crate::dataset::Dataset;
use crate::stats::NumericStats;
use crate::value::{FeatureKind, Value};

/// A fitted feature encoder. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Encoder {
    cols: Vec<ColEncoder>,
    width: usize,
}

#[derive(Debug, Clone)]
enum ColEncoder {
    Numeric { mean: f64, std: f64 },
    OneHot { cardinality: usize },
}

impl Encoder {
    /// Fits an encoder to the columns of `ds`.
    ///
    /// Works on empty datasets too (numeric columns then standardize as
    /// identity minus zero mean).
    pub fn fit(ds: &Dataset) -> Encoder {
        let mut cols = Vec::with_capacity(ds.n_features());
        let mut width = 0;
        for j in 0..ds.n_features() {
            let enc = match (ds.column(j), ds.schema().feature(j).kind()) {
                (Column::Numeric(v), _) => {
                    let s = NumericStats::of(v);
                    width += 1;
                    ColEncoder::Numeric { mean: s.mean, std: s.std }
                }
                (Column::Categorical(_), FeatureKind::Categorical { categories }) => {
                    width += categories.len();
                    ColEncoder::OneHot { cardinality: categories.len() }
                }
                _ => unreachable!("dataset column/schema kind mismatch"),
            };
            cols.push(enc);
        }
        Encoder { cols, width }
    }

    /// Output vector width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes one row into `out`, which is cleared first.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity or cell kinds do not match the fitted
    /// dataset's schema.
    pub fn encode_into(&self, row: &[Value], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        out.clear();
        out.reserve(self.width);
        for (enc, &v) in self.cols.iter().zip(row) {
            match (enc, v) {
                (ColEncoder::Numeric { mean, std }, Value::Num(x)) => {
                    out.push(if *std > 0.0 { (x - mean) / std } else { x - mean });
                }
                (ColEncoder::OneHot { cardinality }, Value::Cat(c)) => {
                    let start = out.len();
                    out.resize(start + cardinality, 0.0);
                    out[start + c as usize] = 1.0;
                }
                _ => panic!("row cell kind does not match encoder"),
            }
        }
    }

    /// Encodes one row into a fresh vector.
    pub fn encode(&self, row: &[Value]) -> Vec<f64> {
        let mut out = Vec::new();
        self.encode_into(row, &mut out);
        out
    }

    /// Encodes every row of `ds` as a dense row-major matrix.
    pub fn encode_dataset(&self, ds: &Dataset) -> Vec<Vec<f64>> {
        (0..ds.n_rows()).map(|i| self.encode(&ds.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn demo() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("c", vec!["u".into(), "v".into(), "w".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(1.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(3.0), Value::Cat(2)], 1).unwrap();
        ds
    }

    #[test]
    fn width_counts_onehot_blocks() {
        let enc = Encoder::fit(&demo());
        assert_eq!(enc.width(), 1 + 3);
    }

    #[test]
    fn zscore_and_onehot() {
        let ds = demo();
        let enc = Encoder::fit(&ds);
        let v = enc.encode(&ds.row(0));
        // mean 2, std 1 -> z = -1
        assert!((v[0] + 1.0).abs() < 1e-12);
        assert_eq!(&v[1..], &[1.0, 0.0, 0.0]);
        let v = enc.encode(&ds.row(1));
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert_eq!(&v[1..], &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(5.0)], 0).unwrap();
        ds.push_row(&[Value::Num(5.0)], 1).unwrap();
        let enc = Encoder::fit(&ds);
        assert_eq!(enc.encode(&ds.row(0)), vec![0.0]);
    }

    #[test]
    fn encode_dataset_shape() {
        let ds = demo();
        let m = Encoder::fit(&ds).encode_dataset(&ds);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].len(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let enc = Encoder::fit(&demo());
        enc.encode(&[Value::Num(0.0)]);
    }
}
