//! Feature encoding: standardized numeric + one-hot categorical.
//!
//! Linear models (`frote-ml::logreg`) and the online-learning selection proxy
//! operate on dense `f64` vectors. [`Encoder`] fits column means/stds on a
//! training dataset and then maps any schema-compatible row to a vector:
//! numeric columns are z-scored (constant columns map to 0), categorical
//! columns expand to one-hot blocks.
//!
//! Batch encoding is matrix-first: [`Encoder::encode_dataset`] fills a flat
//! row-major [`FeatureMatrix`] (in parallel across `frote_par::threads()`
//! threads; cell-for-cell identical to per-row [`Encoder::encode`] at any
//! thread count), and [`Encoder::encode_append`] extends an existing matrix
//! with a dataset's trailing rows so growing datasets (FROTE's `D̂`) encode
//! only what is new. [`EncodedCache`] packages that incremental discipline.

use std::sync::OnceLock;

use crate::column::Column;
use crate::dataset::Dataset;
use crate::matrix::FeatureMatrix;
use crate::sharded::ShardedMatrix;
use crate::stats::NumericStats;
use crate::sync::{CacheCounters, RebuildReason, SyncOutcome};
use crate::value::{FeatureKind, Value};

/// Rows per parallel block when batch-encoding. Block boundaries never
/// affect results, only the schedule.
const ENCODE_BLOCK: usize = 512;

fn counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CacheCounters::new("encoded_cache"))
}

/// A fitted feature encoder. See the [module docs](self).
///
/// Equality compares the fitted parameters (means/stds/cardinalities), so
/// callers can detect when a refit on a grown dataset left the encoding
/// unchanged (always true for pure-categorical schemas).
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    cols: Vec<ColEncoder>,
    width: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum ColEncoder {
    Numeric { mean: f64, std: f64 },
    OneHot { cardinality: usize },
}

impl Encoder {
    /// Fits an encoder to the columns of `ds`.
    ///
    /// Works on empty datasets too (numeric columns then standardize as
    /// identity minus zero mean).
    pub fn fit(ds: &Dataset) -> Encoder {
        let mut cols = Vec::with_capacity(ds.n_features());
        let mut width = 0;
        for j in 0..ds.n_features() {
            let enc = match (ds.column(j), ds.schema().feature(j).kind()) {
                (Column::Numeric(v), _) => {
                    let s = NumericStats::of(v);
                    width += 1;
                    ColEncoder::Numeric { mean: s.mean, std: s.std }
                }
                (Column::Categorical(_), FeatureKind::Categorical { categories }) => {
                    width += categories.len();
                    ColEncoder::OneHot { cardinality: categories.len() }
                }
                _ => unreachable!("dataset column/schema kind mismatch"),
            };
            cols.push(enc);
        }
        Encoder { cols, width }
    }

    /// Output vector width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes one cell into `out`. The single source of truth for the
    /// encoding arithmetic — every batch path funnels through it, which is
    /// what keeps matrix and per-row encodings bit-identical.
    fn encode_cell(enc: &ColEncoder, v: Value, out: &mut Vec<f64>) {
        match (enc, v) {
            (ColEncoder::Numeric { mean, std }, Value::Num(x)) => {
                out.push(if *std > 0.0 { (x - mean) / std } else { x - mean });
            }
            (ColEncoder::OneHot { cardinality }, Value::Cat(c)) => {
                let start = out.len();
                out.resize(start + cardinality, 0.0);
                out[start + c as usize] = 1.0;
            }
            _ => panic!("row cell kind does not match encoder"),
        }
    }

    /// Encodes one row into `out`, which is cleared first.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity or cell kinds do not match the fitted
    /// dataset's schema.
    pub fn encode_into(&self, row: &[Value], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        out.clear();
        out.reserve(self.width);
        for (enc, &v) in self.cols.iter().zip(row) {
            Self::encode_cell(enc, v, out);
        }
    }

    /// Encodes one row into a fresh vector.
    pub fn encode(&self, row: &[Value]) -> Vec<f64> {
        let mut out = Vec::new();
        self.encode_into(row, &mut out);
        out
    }

    /// Appends the encoding of dataset row `i` to `buf`, reading the
    /// columnar store directly (no `Vec<Value>` row materialization).
    fn encode_ds_row(&self, ds: &Dataset, i: usize, buf: &mut Vec<f64>) {
        for (j, enc) in self.cols.iter().enumerate() {
            Self::encode_cell(enc, ds.cell(i, j), buf);
        }
    }

    /// Encodes every row of `ds` as a dense row-major [`FeatureMatrix`], in
    /// parallel across `frote_par::threads()` threads. Cell-for-cell
    /// identical to per-row [`Encoder::encode`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `ds`'s schema does not match the fitted dataset's.
    pub fn encode_dataset(&self, ds: &Dataset) -> FeatureMatrix {
        assert_eq!(ds.n_features(), self.cols.len(), "row arity mismatch");
        if self.width == 0 {
            // Feature-less schemas still have rows; keep the count.
            return FeatureMatrix::zero_width(ds.n_rows());
        }
        let data: Vec<f64> = frote_par::par_blocks_map(ds.n_rows(), ENCODE_BLOCK, |_, rows| {
            let mut buf = Vec::with_capacity(rows.len() * self.width);
            for i in rows {
                self.encode_ds_row(ds, i, &mut buf);
            }
            buf
        });
        FeatureMatrix::from_raw(self.width, data)
    }

    /// Appends the encodings of `ds`'s rows `matrix.n_rows()..ds.n_rows()`
    /// to `matrix` — the incremental path for datasets that only grow.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width differs from the encoder width, or if the
    /// matrix already has more rows than `ds`.
    pub fn encode_append(&self, ds: &Dataset, matrix: &mut FeatureMatrix) {
        assert_eq!(matrix.width(), self.width, "matrix width must equal the encoder width");
        assert!(matrix.n_rows() <= ds.n_rows(), "matrix has more rows than the dataset");
        for i in matrix.n_rows()..ds.n_rows() {
            matrix.push_row_with(|buf| self.encode_ds_row(ds, i, buf));
        }
    }

    /// Encodes every row of `ds` into a [`ShardedMatrix`], one parallel
    /// task per shard (shard size from the [`crate::sharded::shard_rows`]
    /// resolver). Every cell funnels through the same encoding arithmetic
    /// as [`Encoder::encode`], so the result flattens cell-for-cell equal
    /// to [`Encoder::encode_dataset`] at any shard size or thread count.
    ///
    /// # Panics
    ///
    /// Panics if `ds`'s schema does not match the fitted dataset's.
    pub fn encode_dataset_sharded(&self, ds: &Dataset) -> ShardedMatrix {
        assert_eq!(ds.n_features(), self.cols.len(), "row arity mismatch");
        let shard_rows = crate::sharded::shard_rows();
        let n = ds.n_rows();
        let ranges: Vec<(usize, usize)> =
            (0..n).step_by(shard_rows).map(|s| (s, (s + shard_rows).min(n))).collect();
        let shards = frote_par::par_map(&ranges, |&(start, end)| {
            if self.width == 0 {
                return FeatureMatrix::zero_width(end - start);
            }
            let mut m = FeatureMatrix::with_capacity(self.width, end - start);
            for i in start..end {
                m.push_row_with(|buf| self.encode_ds_row(ds, i, buf));
            }
            m
        });
        ShardedMatrix::from_shards(self.width, shard_rows, shards)
    }

    /// The sharded counterpart of [`Encoder::encode_append`]: appends the
    /// encodings of `ds`'s trailing rows to `matrix`, opening new shards as
    /// they fill.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width differs from the encoder width, or if the
    /// matrix already has more rows than `ds`.
    pub fn encode_append_sharded(&self, ds: &Dataset, matrix: &mut ShardedMatrix) {
        assert_eq!(matrix.width(), self.width, "matrix width must equal the encoder width");
        assert!(matrix.n_rows() <= ds.n_rows(), "matrix has more rows than the dataset");
        for i in matrix.n_rows()..ds.n_rows() {
            matrix.push_row_with(|buf| self.encode_ds_row(ds, i, buf));
        }
    }
}

/// An incrementally maintained encoded view of a growing dataset: the
/// encoder fit plus the full [`FeatureMatrix`] of encodings, kept in sync by
/// appending only new rows whenever growth leaves the fitted parameters
/// unchanged (always, for pure-categorical schemas such as the paper's Car /
/// Mushroom / Nursery benchmarks) and re-encoding in place otherwise.
///
/// The cache is exact by construction: after [`EncodedCache::sync`],
/// `encoder()` equals `Encoder::fit(ds)` and `matrix()` equals
/// `encoder().encode_dataset(ds)` bit for bit — callers trade no determinism
/// for the saved work.
#[derive(Debug, Clone)]
pub struct EncodedCache {
    encoder: Encoder,
    matrix: FeatureMatrix,
    /// Set by [`EncodedCache::truncate`]: the stored encoder may have been
    /// fitted on since-dropped rows, so the next [`EncodedCache::sync`] must
    /// re-check the fit even when the row counts already match.
    stale_fit: bool,
}

impl EncodedCache {
    /// Fits the encoder to `ds` and encodes every row.
    pub fn fit(ds: &Dataset) -> EncodedCache {
        let encoder = Encoder::fit(ds);
        let matrix = encoder.encode_dataset(ds);
        EncodedCache { encoder, matrix, stale_fit: false }
    }

    /// Brings the cache in sync with `ds`, whose leading `matrix().n_rows()`
    /// rows must be unchanged since the last sync (FROTE's loop only ever
    /// appends). Returns how the cache was updated: [`SyncOutcome::Appended`]
    /// when the fitted parameters held and only new rows were encoded,
    /// [`SyncOutcome::Rebuilt`] (with the reason) when a full re-encode was
    /// required.
    pub fn sync(&mut self, ds: &Dataset) -> SyncOutcome {
        let outcome = self.sync_inner(ds);
        counters().record_sync(&outcome);
        outcome
    }

    fn sync_inner(&mut self, ds: &Dataset) -> SyncOutcome {
        if !self.stale_fit && ds.n_rows() == self.matrix.n_rows() {
            return SyncOutcome::Unchanged; // even the refit can be skipped
        }
        let was_stale = self.stale_fit;
        self.stale_fit = false;
        let refit = Encoder::fit(ds);
        if refit == self.encoder && frote_faults::point("data.cache.encoded.append").is_ok() {
            let appended = ds.n_rows() - self.matrix.n_rows();
            self.encoder.encode_append(ds, &mut self.matrix);
            SyncOutcome::Appended { rows: appended }
        } else if refit == self.encoder {
            // An injected fault poisoned the append fast path: degrade to a
            // full rebuild — bit-identical output, only the cost changes.
            self.matrix = self.encoder.encode_dataset(ds);
            SyncOutcome::Rebuilt(RebuildReason::Injected)
        } else {
            self.encoder = refit;
            self.matrix = self.encoder.encode_dataset(ds);
            SyncOutcome::Rebuilt(if was_stale {
                RebuildReason::StaleFit
            } else {
                RebuildReason::FitChanged
            })
        }
    }

    /// Drops cached encodings past the first `rows` rows (rejecting a
    /// candidate batch without re-encoding the survivors). The surviving
    /// rows stay valid — cell encodings depend only on the encoder — but the
    /// encoder itself may have been refitted on the dropped rows, so the
    /// next [`EncodedCache::sync`] re-checks the fit.
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.matrix.n_rows() {
            self.stale_fit = true;
            counters().record_truncate(self.matrix.n_rows() - rows);
        }
        self.matrix.truncate_rows(rows);
    }

    /// The current encoder fit.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The encoded rows, one per dataset row as of the last sync.
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn demo() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("c", vec!["u".into(), "v".into(), "w".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(1.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(3.0), Value::Cat(2)], 1).unwrap();
        ds
    }

    #[test]
    fn width_counts_onehot_blocks() {
        let enc = Encoder::fit(&demo());
        assert_eq!(enc.width(), 1 + 3);
    }

    #[test]
    fn zscore_and_onehot() {
        let ds = demo();
        let enc = Encoder::fit(&ds);
        let v = enc.encode(&ds.row(0));
        // mean 2, std 1 -> z = -1
        assert!((v[0] + 1.0).abs() < 1e-12);
        assert_eq!(&v[1..], &[1.0, 0.0, 0.0]);
        let v = enc.encode(&ds.row(1));
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert_eq!(&v[1..], &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(5.0)], 0).unwrap();
        ds.push_row(&[Value::Num(5.0)], 1).unwrap();
        let enc = Encoder::fit(&ds);
        assert_eq!(enc.encode(&ds.row(0)), vec![0.0]);
    }

    #[test]
    fn encode_dataset_matches_per_row_encode() {
        let ds = demo();
        let enc = Encoder::fit(&ds);
        let m = enc.encode_dataset(&ds);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.width(), 4);
        for i in 0..ds.n_rows() {
            assert_eq!(m.row(i), enc.encode(&ds.row(i)).as_slice());
        }
    }

    #[test]
    fn encode_append_extends_incrementally() {
        let mut ds = demo();
        let enc = Encoder::fit(&ds);
        let mut m = enc.encode_dataset(&ds);
        ds.push_row(&[Value::Num(2.0), Value::Cat(1)], 0).unwrap();
        enc.encode_append(&ds, &mut m);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.row(2), enc.encode(&ds.row(2)).as_slice());
    }

    #[test]
    fn cache_incremental_on_categorical_schema() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        let mut cache = EncodedCache::fit(&ds);
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Appended { rows: 1 },
            "one-hot params never change: append path"
        );
        assert_eq!(cache.matrix().n_rows(), 2);
        assert_eq!(cache.matrix(), &cache.encoder().encode_dataset(&ds));
    }

    #[test]
    fn injected_append_fault_degrades_to_rebuild() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        let mut cache = EncodedCache::fit(&ds);
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        frote_faults::test_support::with_spec(Some("data.cache.encoded.append:err:1000:2"), || {
            assert_eq!(cache.sync(&ds), SyncOutcome::Rebuilt(RebuildReason::Injected));
        });
        assert_eq!(cache.matrix(), &cache.encoder().encode_dataset(&ds));
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        assert_eq!(cache.sync(&ds), SyncOutcome::Appended { rows: 1 }, "fault cleared");
    }

    #[test]
    fn cache_refits_when_numeric_stats_move() {
        let mut ds = demo();
        let mut cache = EncodedCache::fit(&ds);
        ds.push_row(&[Value::Num(100.0), Value::Cat(0)], 0).unwrap();
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Rebuilt(RebuildReason::FitChanged),
            "mean/std moved: full re-encode"
        );
        assert_eq!(cache.encoder(), &Encoder::fit(&ds));
        assert_eq!(cache.matrix(), &cache.encoder().encode_dataset(&ds));
    }

    #[test]
    fn cache_truncate_drops_rejected_rows() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        let mut cache = EncodedCache::fit(&ds);
        cache.truncate(1);
        assert_eq!(cache.matrix().n_rows(), 1);
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Appended { rows: 1 },
            "categorical fit survives the stale-fit re-check: append path"
        );
        assert_eq!(cache.matrix(), &cache.encoder().encode_dataset(&ds));
    }

    #[test]
    fn truncate_after_refit_restores_the_original_fit() {
        // A candidate row moves the numeric stats (full re-encode), then is
        // rejected: truncate must leave the cache able to recover the
        // original encoder on the next sync, even though the row counts
        // already match.
        let ds = demo();
        let mut cache = EncodedCache::fit(&ds);
        let mut candidate = ds.clone();
        candidate.push_row(&[Value::Num(100.0), Value::Cat(1)], 0).unwrap();
        assert_eq!(
            cache.sync(&candidate),
            SyncOutcome::Rebuilt(RebuildReason::FitChanged),
            "stats moved: full re-encode"
        );
        cache.truncate(ds.n_rows());
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Rebuilt(RebuildReason::StaleFit),
            "rollback left a fit computed on dropped rows"
        );
        assert_eq!(cache.encoder(), &Encoder::fit(&ds), "fit restored after rollback");
        assert_eq!(cache.matrix(), &cache.encoder().encode_dataset(&ds));
    }

    #[test]
    fn sync_on_unchanged_dataset_is_a_noop() {
        let ds = demo();
        let mut cache = EncodedCache::fit(&ds);
        assert_eq!(cache.sync(&ds), SyncOutcome::Unchanged);
    }

    #[test]
    fn stale_recheck_without_growth_appends_zero_rows() {
        // Rolling back to a prefix of a categorical dataset leaves the fit
        // valid: the forced re-check confirms it without appending anything.
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut prefix = Dataset::new(schema);
        prefix.push_row(&[Value::Cat(0)], 0).unwrap();
        let mut grown = prefix.clone();
        grown.push_row(&[Value::Cat(1)], 1).unwrap();
        let mut cache = EncodedCache::fit(&grown);
        cache.truncate(prefix.n_rows());
        assert_eq!(cache.sync(&prefix), SyncOutcome::Appended { rows: 0 });
        assert_eq!(cache.matrix(), &cache.encoder().encode_dataset(&prefix));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let enc = Encoder::fit(&demo());
        enc.encode(&[Value::Num(0.0)]);
    }
}
