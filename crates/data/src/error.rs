//! Error type for the data crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by dataset construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A row's arity or cell types did not match the schema.
    SchemaMismatch {
        /// Human-readable detail of the mismatch.
        detail: String,
    },
    /// A label index was outside the schema's class vocabulary.
    LabelOutOfRange {
        /// The offending label.
        label: u32,
        /// Number of classes in the schema.
        n_classes: usize,
    },
    /// CSV parse failure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// Requested an operation on an empty dataset that requires rows.
    EmptyDataset,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            DataError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            DataError::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            DataError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
        }
    }
}

impl StdError for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DataError::LabelOutOfRange { label: 9, n_classes: 2 };
        assert_eq!(e.to_string(), "label 9 out of range for 2 classes");
        let e = DataError::SchemaMismatch { detail: "expected 3 cells, got 2".into() };
        assert!(e.to_string().starts_with("schema mismatch"));
        let e = DataError::Parse { line: 4, detail: "bad float".into() };
        assert!(e.to_string().contains("line 4"));
        assert_eq!(DataError::EmptyDataset.to_string(), "operation requires a non-empty dataset");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DataError>();
    }
}
