//! Per-column statistics used by encoders, distances, and generators.

use crate::column::Column;
use crate::dataset::Dataset;

/// Summary statistics of a numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl NumericStats {
    /// Computes stats over a slice.
    ///
    /// Returns a zeroed struct for an empty slice.
    pub fn of(values: &[f64]) -> NumericStats {
        if values.is_empty() {
            return NumericStats { min: 0.0, max: 0.0, mean: 0.0, std: 0.0 };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in values {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        let mean = sum / values.len() as f64;
        let var =
            values.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / values.len() as f64;
        NumericStats { min, max, mean, std: var.sqrt() }
    }

    /// The value range `max - min`.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Frequency table of a categorical column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalStats {
    counts: Vec<usize>,
}

impl CategoricalStats {
    /// Computes category counts over a slice, with `cardinality` buckets.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= cardinality`.
    pub fn of(values: &[u32], cardinality: usize) -> CategoricalStats {
        let mut counts = vec![0usize; cardinality];
        for &c in values {
            counts[c as usize] += 1;
        }
        CategoricalStats { counts }
    }

    /// Per-category counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The most frequent category (ties to the lowest index), or `None` for
    /// an empty vocabulary.
    pub fn mode(&self) -> Option<u32> {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
    }
}

/// Statistics for all columns of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    numeric: Vec<Option<NumericStats>>,
}

impl DatasetStats {
    /// Computes numeric stats per column (categorical columns get `None`).
    pub fn of(ds: &Dataset) -> DatasetStats {
        let numeric = (0..ds.n_features())
            .map(|j| match ds.column(j) {
                Column::Numeric(v) => Some(NumericStats::of(v)),
                Column::Categorical(_) => None,
            })
            .collect();
        DatasetStats { numeric }
    }

    /// Numeric stats of column `j`, if numeric.
    pub fn numeric(&self, j: usize) -> Option<&NumericStats> {
        self.numeric.get(j).and_then(|s| s.as_ref())
    }

    /// Median of the standard deviations of all numeric columns (the
    /// SMOTE-NC nominal-mismatch penalty), or 0 when there are none.
    pub fn median_numeric_std(&self) -> f64 {
        let mut stds: Vec<f64> = self.numeric.iter().flatten().map(|s| s.std).collect();
        if stds.is_empty() {
            return 0.0;
        }
        stds.sort_by(|a, b| a.partial_cmp(b).expect("std is never NaN"));
        let n = stds.len();
        if n % 2 == 1 {
            stds[n / 2]
        } else {
            0.5 * (stds[n / 2 - 1] + stds[n / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, Value};

    #[test]
    fn numeric_stats_basic() {
        let s = NumericStats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.range(), 3.0);
    }

    #[test]
    fn numeric_stats_empty() {
        let s = NumericStats::of(&[]);
        assert_eq!(s, NumericStats { min: 0.0, max: 0.0, mean: 0.0, std: 0.0 });
    }

    #[test]
    fn categorical_mode() {
        let s = CategoricalStats::of(&[0, 1, 1, 2, 1], 3);
        assert_eq!(s.counts(), &[1, 3, 1]);
        assert_eq!(s.mode(), Some(1));
        let tie = CategoricalStats::of(&[0, 1], 2);
        assert_eq!(tie.mode(), Some(0));
    }

    #[test]
    fn dataset_stats_skips_categorical() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("c", vec!["u".into(), "v".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(2.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(4.0), Value::Cat(1)], 1).unwrap();
        let st = DatasetStats::of(&ds);
        assert!(st.numeric(0).is_some());
        assert!(st.numeric(1).is_none());
        assert_eq!(st.numeric(0).unwrap().mean, 3.0);
    }

    #[test]
    fn median_std_odd_even() {
        // Single numeric column -> its own std.
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(0.0)], 0).unwrap();
        ds.push_row(&[Value::Num(2.0)], 1).unwrap();
        let st = DatasetStats::of(&ds);
        assert!((st.median_numeric_std() - 1.0).abs() < 1e-12);

        // No numeric columns -> 0.
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("c", vec!["u".into(), "v".into()])
            .build();
        let ds = Dataset::new(schema);
        assert_eq!(DatasetStats::of(&ds).median_numeric_std(), 0.0);
    }
}
