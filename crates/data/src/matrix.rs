//! A dense, flat, row-major feature matrix.
//!
//! The encoded data plane of the workspace: one contiguous `Vec<f64>` with a
//! fixed row stride, so batch scoring walks cache lines instead of chasing a
//! pointer per row (the `Vec<Vec<f64>>` layout it replaces). Rows are read as
//! borrowed `&[f64]` views and appended either whole ([`FeatureMatrix::push_row`])
//! or written in place ([`FeatureMatrix::push_row_with`]).

use std::ops::Index;

/// A dense row-major `f64` matrix with a fixed row width. See the module
/// docs above for the layout rationale.
///
/// # Example
///
/// ```
/// use frote_data::FeatureMatrix;
/// let mut m = FeatureMatrix::new(2);
/// m.push_row(&[1.0, 2.0]);
/// m.push_row(&[3.0, 4.0]);
/// assert_eq!(m.n_rows(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// assert_eq!(&m[0], &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    width: usize,
    rows: usize,
}

impl FeatureMatrix {
    /// Creates an empty matrix whose rows will have `width` columns.
    pub fn new(width: usize) -> Self {
        FeatureMatrix { data: Vec::new(), width, rows: 0 }
    }

    /// [`FeatureMatrix::new`] with storage pre-allocated for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        FeatureMatrix { data: Vec::with_capacity(width * rows), width, rows: 0 }
    }

    /// Builds a matrix from `width` and its raw row-major backing storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `width` (a `width` of 0
    /// requires empty data).
    pub fn from_raw(width: usize, data: Vec<f64>) -> Self {
        let rows = if width == 0 {
            assert!(data.is_empty(), "width-0 matrix cannot hold data");
            0
        } else {
            assert_eq!(data.len() % width, 0, "data length must be a multiple of the width");
            data.len() / width
        };
        FeatureMatrix { data, width, rows }
    }

    /// A matrix of `rows` zero-width rows — the encoded shape of a
    /// feature-less schema, where row count still matters.
    pub fn zero_width(rows: usize) -> Self {
        FeatureMatrix { data: Vec::new(), width: 0, rows }
    }

    /// Builds a matrix from nested rows (all rows must share one length).
    ///
    /// # Panics
    ///
    /// Panics if row lengths are inconsistent.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let width = rows.first().map_or(0, Vec::len);
        let mut m = FeatureMatrix::with_capacity(width, rows.len());
        for row in &rows {
            m.push_row(row);
        }
        m
    }

    /// Row stride (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a borrowed slice view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterator over row views in order (zero-width rows yield empty
    /// slices, one per row).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| &self.data[i * self.width..(i + 1) * self.width])
    }

    /// The flat row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat backing slice (e.g. to zero an
    /// accumulator matrix between passes).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != width()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row length must equal the matrix width");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends one row written in place: `fill` receives the backing buffer
    /// and must extend it by exactly `width()` values. This lets encoders
    /// stream cells into the matrix without a bounce buffer.
    ///
    /// # Panics
    ///
    /// Panics if `fill` grows the buffer by anything other than `width()`.
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut Vec<f64>)) {
        let before = self.data.len();
        fill(&mut self.data);
        assert_eq!(
            self.data.len() - before,
            self.width,
            "push_row_with must append exactly width() values"
        );
        self.rows += 1;
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn extend_from(&mut self, other: &FeatureMatrix) {
        assert_eq!(self.width, other.width, "matrix widths must match");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Drops all rows past the first `rows` (no-op when already shorter).
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.data.truncate(rows * self.width);
            self.rows = rows;
        }
    }

    /// Clears all rows, keeping the allocation and width.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }
}

impl Index<usize> for FeatureMatrix {
    type Output = [f64];

    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl From<Vec<Vec<f64>>> for FeatureMatrix {
    fn from(rows: Vec<Vec<f64>>) -> Self {
        FeatureMatrix::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_view() {
        let mut m = FeatureMatrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.width(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(&m[1], &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn from_rows_and_raw_round_trip() {
        let nested = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = FeatureMatrix::from_rows(nested.clone());
        let raw = FeatureMatrix::from_raw(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m, raw);
        let via_from: FeatureMatrix = nested.into();
        assert_eq!(via_from, m);
    }

    #[test]
    fn push_row_with_streams_cells() {
        let mut m = FeatureMatrix::new(2);
        m.push_row_with(|buf| buf.extend_from_slice(&[7.0, 8.0]));
        assert_eq!(m.row(0), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "exactly width()")]
    fn push_row_with_wrong_arity_panics() {
        let mut m = FeatureMatrix::new(2);
        m.push_row_with(|buf| buf.push(1.0));
    }

    #[test]
    fn extend_truncate_clear() {
        let mut a = FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let b = FeatureMatrix::from_rows(vec![vec![3.0]]);
        a.extend_from(&b);
        assert_eq!(a.n_rows(), 3);
        a.truncate_rows(5); // no-op
        assert_eq!(a.n_rows(), 3);
        a.truncate_rows(1);
        assert_eq!(a.n_rows(), 1);
        assert_eq!(a.row(0), &[1.0]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.width(), 1);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = FeatureMatrix::from_rows(vec![vec![0.0, 0.0]]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.row(0), &[0.0, 9.0]);
    }

    #[test]
    fn empty_and_zero_width() {
        let m = FeatureMatrix::new(0);
        assert_eq!(m.n_rows(), 0);
        assert!(m.rows().next().is_none());
        let m = FeatureMatrix::from_rows(Vec::new());
        assert_eq!(m.width(), 0);
        // Zero-width rows still count as rows.
        let mut m = FeatureMatrix::zero_width(3);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.rows().len(), 3);
        assert_eq!(m.row(2), &[] as &[f64]);
        m.push_row(&[]);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.rows().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_oob_panics() {
        FeatureMatrix::new(2).row(0);
    }

    #[test]
    #[should_panic(expected = "must equal the matrix width")]
    fn push_wrong_width_panics() {
        FeatureMatrix::new(2).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of the width")]
    fn from_raw_ragged_panics() {
        FeatureMatrix::from_raw(2, vec![1.0, 2.0, 3.0]);
    }
}
