//! Per-feature value samplers.

use rand::Rng;

use crate::value::Value;

/// A sampler for one feature column.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureGen {
    /// Mixture of Gaussians: component `i` has weight `weights[i]`, mean
    /// `means[i]`, standard deviation `stds[i]`. Weights need not be
    /// normalized.
    GaussianMixture {
        /// Component weights (unnormalized).
        weights: Vec<f64>,
        /// Component means.
        means: Vec<f64>,
        /// Component standard deviations.
        stds: Vec<f64>,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Categorical over indices `0..weights.len()` with the given
    /// (unnormalized) weights.
    Categorical {
        /// Per-category weights (unnormalized).
        weights: Vec<f64>,
    },
}

impl FeatureGen {
    /// A single Gaussian.
    pub fn gaussian(mean: f64, std: f64) -> FeatureGen {
        FeatureGen::GaussianMixture { weights: vec![1.0], means: vec![mean], stds: vec![std] }
    }

    /// A uniform categorical over `k` values.
    pub fn uniform_categorical(k: usize) -> FeatureGen {
        FeatureGen::Categorical { weights: vec![1.0; k] }
    }

    /// Draws one value.
    ///
    /// # Panics
    ///
    /// Panics if a mixture/categorical has no components or non-positive
    /// total weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Value {
        match self {
            FeatureGen::GaussianMixture { weights, means, stds } => {
                let k = pick_weighted(weights, rng);
                Value::Num(means[k] + stds[k] * gaussian_unit(rng))
            }
            FeatureGen::Uniform { lo, hi } => Value::Num(rng.random_range(*lo..*hi)),
            FeatureGen::Categorical { weights } => Value::Cat(pick_weighted(weights, rng) as u32),
        }
    }

    /// Whether this generator produces numeric values.
    pub fn is_numeric(&self) -> bool {
        !matches!(self, FeatureGen::Categorical { .. })
    }
}

/// Samples an index proportional to `weights`.
fn pick_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "weighted pick over empty weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted pick needs positive total weight");
    let mut t = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

/// Standard normal via Box–Muller (the `rand` crate alone has no normal
/// distribution; `rand_distr` is not in the offline set).
fn gaussian_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_roughly_match() {
        let g = FeatureGen::gaussian(5.0, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng).expect_num()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_stays_in_range() {
        let g = FeatureGen::Uniform { lo: -1.0, hi: 3.0 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = g.sample(&mut rng).expect_num();
            assert!((-1.0..3.0).contains(&x));
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let g = FeatureGen::Categorical { weights: vec![1.0, 3.0] };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let ones = (0..n).filter(|_| g.sample(&mut rng).expect_cat() == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn uniform_categorical_covers_all() {
        let g = FeatureGen::uniform_categorical(5);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[g.sample(&mut rng).expect_cat() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mixture_picks_both_modes() {
        let g = FeatureGen::GaussianMixture {
            weights: vec![1.0, 1.0],
            means: vec![-10.0, 10.0],
            stds: vec![0.5, 0.5],
        };
        let mut rng = StdRng::seed_from_u64(5);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            if g.sample(&mut rng).expect_num() < 0.0 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "lo={lo} hi={hi}");
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn empty_weights_panic() {
        let g = FeatureGen::Categorical { weights: vec![] };
        let mut rng = StdRng::seed_from_u64(6);
        g.sample(&mut rng);
    }
}
