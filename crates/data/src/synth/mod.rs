//! Schema-matched synthetic generators for the paper's eight UCI datasets.
//!
//! The FROTE evaluation (Table 1) uses Adult, Breast Cancer, Nursery, Wine
//! Quality (white), Mushroom, Contraceptive, Car, and Splice. This environment
//! has no dataset downloads, so each generator reproduces the *schema* of its
//! dataset (instance count, numeric/nominal feature split, class count — the
//! properties Table 1 reports) and plants a learnable rule-based concept with
//! label noise, so that:
//!
//! - models trained on the data have real structure to learn,
//! - rule-set explanations extracted from those models have meaningful
//!   coverage, and
//! - FROTE's editing dynamics (decision boundaries movable by augmentation)
//!   are exercised on the same code paths as the paper's experiments.
//!
//! See DESIGN.md §3 for the substitution rationale.
//!
//! ```
//! use frote_data::synth::{DatasetKind, SynthConfig};
//! let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 200, ..Default::default() });
//! assert_eq!(ds.n_rows(), 200);
//! assert_eq!(ds.schema().n_classes(), 4);
//! ```

mod concept;
mod feature;
mod specs;

pub use concept::{ConceptCond, ConceptRule, PlantedConcept};
pub use feature::FeatureGen;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::schema::Schema;

/// Which of the paper's eight benchmark datasets to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Adult census income — 45222 rows, 12 features (4 numeric / 8 nominal), 2 classes.
    Adult,
    /// Breast Cancer (Wisconsin diagnostic) — 569 rows, 30 numeric features, 2 classes.
    BreastCancer,
    /// Nursery — 12958 rows, 8 nominal features, 4 classes.
    Nursery,
    /// Wine Quality (white) — 4898 rows, 11 numeric features, 7 classes.
    WineQuality,
    /// Mushroom — 8124 rows, 21 nominal features, 2 classes.
    Mushroom,
    /// Contraceptive method choice — 1473 rows, 9 features (2/7), 3 classes.
    Contraceptive,
    /// Car evaluation — 1728 rows, 6 nominal features, 4 classes.
    Car,
    /// Splice-junction gene sequences — 3190 rows, 60 nominal features, 3 classes.
    Splice,
}

impl DatasetKind {
    /// All eight kinds in the paper's Table 1 order.
    pub const ALL: [DatasetKind; 8] = [
        DatasetKind::Adult,
        DatasetKind::BreastCancer,
        DatasetKind::Nursery,
        DatasetKind::WineQuality,
        DatasetKind::Mushroom,
        DatasetKind::Contraceptive,
        DatasetKind::Car,
        DatasetKind::Splice,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Adult => "Adult",
            DatasetKind::BreastCancer => "Breast Cancer",
            DatasetKind::Nursery => "Nursery",
            DatasetKind::WineQuality => "Wine Quality (white)",
            DatasetKind::Mushroom => "Mushroom",
            DatasetKind::Contraceptive => "Contraceptive",
            DatasetKind::Car => "Car",
            DatasetKind::Splice => "Splice",
        }
    }

    /// The paper's instance count for this dataset (Table 1).
    pub fn paper_n_rows(self) -> usize {
        match self {
            DatasetKind::Adult => 45222,
            DatasetKind::BreastCancer => 569,
            DatasetKind::Nursery => 12958,
            DatasetKind::WineQuality => 4898,
            DatasetKind::Mushroom => 8124,
            DatasetKind::Contraceptive => 1473,
            DatasetKind::Car => 1728,
            DatasetKind::Splice => 3190,
        }
    }

    /// Whether the dataset is binary (used by the Overlay comparison, which
    /// the paper restricts to binary datasets).
    pub fn is_binary(self) -> bool {
        matches!(self, DatasetKind::Adult | DatasetKind::BreastCancer | DatasetKind::Mushroom)
    }

    /// The generator spec (schema + feature generators + planted concept).
    pub fn spec(self) -> SynthSpec {
        match self {
            DatasetKind::Adult => specs::adult(),
            DatasetKind::BreastCancer => specs::breast_cancer(),
            DatasetKind::Nursery => specs::nursery(),
            DatasetKind::WineQuality => specs::wine_quality(),
            DatasetKind::Mushroom => specs::mushroom(),
            DatasetKind::Contraceptive => specs::contraceptive(),
            DatasetKind::Car => specs::car(),
            DatasetKind::Splice => specs::splice(),
        }
    }

    /// Generates the dataset under `config`.
    pub fn generate(self, config: &SynthConfig) -> Dataset {
        let spec = self.spec();
        spec.generate(config)
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of rows to generate. `0` means use the paper's Table 1 count
    /// when generating through [`DatasetKind::generate`].
    pub n_rows: usize,
    /// Probability of replacing the concept label with a uniformly random
    /// other class (label noise).
    pub noise: f64,
    /// RNG seed. The paper runs with seed 42; the eval harness derives
    /// per-run streams from it.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { n_rows: 0, noise: 0.08, seed: 42 }
    }
}

/// A complete generator spec: schema, per-feature samplers, planted concept.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    schema: Schema,
    feature_gens: Vec<FeatureGen>,
    concept: PlantedConcept,
    paper_n_rows: usize,
}

impl SynthSpec {
    /// Builds a spec; used by the per-dataset constructors in this module and
    /// available for custom scenarios (see the `policy_update` example).
    ///
    /// # Panics
    ///
    /// Panics if `feature_gens.len() != schema.n_features()` or the concept
    /// references an out-of-range feature or class.
    pub fn new(
        schema: Schema,
        feature_gens: Vec<FeatureGen>,
        concept: PlantedConcept,
        paper_n_rows: usize,
    ) -> Self {
        assert_eq!(
            feature_gens.len(),
            schema.n_features(),
            "one feature generator per schema feature"
        );
        concept.validate(&schema);
        SynthSpec { schema, feature_gens, concept, paper_n_rows }
    }

    /// The schema this spec generates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The planted labelling concept.
    pub fn concept(&self) -> &PlantedConcept {
        &self.concept
    }

    /// A copy of this spec with a different labelling concept (same schema
    /// and feature generators) — pair with
    /// [`PlantedConcept::with_rule_class`] to synthesize matched pre-/post-
    /// policy-change datasets.
    ///
    /// # Panics
    ///
    /// Panics if the concept does not validate against the schema.
    pub fn with_concept(&self, concept: PlantedConcept) -> SynthSpec {
        concept.validate(&self.schema);
        SynthSpec { concept, ..self.clone() }
    }

    /// Generates a dataset under `config` (`n_rows == 0` uses the paper
    /// count).
    pub fn generate(&self, config: &SynthConfig) -> Dataset {
        let n = if config.n_rows == 0 { self.paper_n_rows } else { config.n_rows };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut ds = Dataset::new(self.schema.clone());
        let n_classes = self.schema.n_classes() as u32;
        let mut row = Vec::with_capacity(self.feature_gens.len());
        for _ in 0..n {
            row.clear();
            for g in &self.feature_gens {
                row.push(g.sample(&mut rng));
            }
            let mut label = self.concept.label(&row);
            if n_classes > 1 && rng.random::<f64>() < config.noise {
                let shift = rng.random_range(1..n_classes);
                label = (label + shift) % n_classes;
            }
            ds.push_row(&row, label).expect("spec-generated row matches schema");
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_generate_with_correct_shapes() {
        let cfg = SynthConfig { n_rows: 120, ..Default::default() };
        for kind in DatasetKind::ALL {
            let ds = kind.generate(&cfg);
            assert_eq!(ds.n_rows(), 120, "{}", kind.name());
            let spec = kind.spec();
            assert_eq!(ds.schema(), spec.schema());
        }
    }

    #[test]
    fn table1_shapes_match_paper() {
        // (#numeric, #nominal, #classes) from Table 1.
        let expected = [
            (DatasetKind::Adult, 4, 8, 2),
            (DatasetKind::BreastCancer, 30, 0, 2),
            (DatasetKind::Nursery, 0, 8, 4),
            (DatasetKind::WineQuality, 11, 0, 7),
            (DatasetKind::Mushroom, 0, 21, 2),
            (DatasetKind::Contraceptive, 2, 7, 3),
            (DatasetKind::Car, 0, 6, 4),
            (DatasetKind::Splice, 0, 60, 3),
        ];
        for (kind, n_num, n_cat, n_classes) in expected {
            let s = kind.spec();
            assert_eq!(s.schema().n_numeric(), n_num, "{}", kind.name());
            assert_eq!(s.schema().n_categorical(), n_cat, "{}", kind.name());
            assert_eq!(s.schema().n_classes(), n_classes, "{}", kind.name());
        }
    }

    #[test]
    fn default_row_counts_match_table1() {
        for kind in DatasetKind::ALL {
            // Generate with n_rows=0 for the two smallest datasets only (the
            // big ones are exercised at paper scale by the bench binaries).
            if kind.paper_n_rows() < 2000 {
                let ds = kind.generate(&SynthConfig::default());
                assert_eq!(ds.n_rows(), kind.paper_n_rows());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig { n_rows: 50, ..Default::default() };
        let a = DatasetKind::Mushroom.generate(&cfg);
        let b = DatasetKind::Mushroom.generate(&cfg);
        assert_eq!(a, b);
        let c = DatasetKind::Mushroom.generate(&SynthConfig { seed: 7, ..cfg });
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn labels_correlate_with_concept() {
        // With zero noise every label equals the concept label.
        let cfg = SynthConfig { n_rows: 300, noise: 0.0, ..Default::default() };
        let spec = DatasetKind::Car.spec();
        let ds = spec.generate(&cfg);
        for i in 0..ds.n_rows() {
            assert_eq!(ds.label(i), spec.concept().label(&ds.row(i)));
        }
    }

    #[test]
    fn every_class_appears_somewhere() {
        // At moderate sizes every dataset should touch all its classes; this
        // guards against degenerate concepts.
        let cfg = SynthConfig { n_rows: 3000, ..Default::default() };
        for kind in DatasetKind::ALL {
            let ds = kind.generate(&cfg);
            let counts = ds.class_counts();
            let present = counts.iter().filter(|&&c| c > 0).count();
            assert!(
                present >= ds.n_classes().min(3),
                "{} produced too few classes: {counts:?}",
                kind.name()
            );
        }
    }

    #[test]
    fn concept_edit_changes_only_the_edited_region() {
        let spec = DatasetKind::Car.spec();
        // Edit the first planted rule's class (low safety: unacc -> acc).
        let edited_concept = spec.concept().with_rule_class(0, 1);
        let edited = spec.with_concept(edited_concept);
        let cfg = SynthConfig { n_rows: 500, noise: 0.0, ..Default::default() };
        let before = spec.generate(&cfg);
        let after = edited.generate(&cfg);
        assert_eq!(before.n_rows(), after.n_rows());
        for i in 0..before.n_rows() {
            // Same seed => identical features.
            assert_eq!(before.row(i), after.row(i));
            let in_region = spec.concept().rules()[0].matches(&before.row(i));
            if in_region {
                assert_eq!(before.label(i), 0);
                assert_eq!(after.label(i), 1);
            } else {
                assert_eq!(before.label(i), after.label(i));
            }
        }
    }

    #[test]
    fn binary_flags() {
        assert!(DatasetKind::Mushroom.is_binary());
        assert!(!DatasetKind::Car.is_binary());
    }
}
