//! Planted labelling concepts: ordered rule lists over raw feature values.
//!
//! A [`PlantedConcept`] is a first-match-wins decision list. It is *not* the
//! user-facing feedback-rule machinery (that lives in `frote-rules`, above
//! this crate); it is only the ground truth that gives synthetic data
//! learnable structure.

use crate::schema::Schema;
use crate::value::Value;

/// A primitive condition on one feature, evaluated on raw values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConceptCond {
    /// Numeric feature `feature` is `< threshold`.
    NumLt {
        /// Feature index.
        feature: usize,
        /// Threshold.
        threshold: f64,
    },
    /// Numeric feature `feature` is `>= threshold`.
    NumGe {
        /// Feature index.
        feature: usize,
        /// Threshold.
        threshold: f64,
    },
    /// Categorical feature `feature` equals `category`.
    CatEq {
        /// Feature index.
        feature: usize,
        /// Category index.
        category: u32,
    },
    /// Categorical feature `feature` is one of `categories` (small set).
    CatIn {
        /// Feature index.
        feature: usize,
        /// Allowed category indices.
        categories: [u32; 2],
    },
}

impl ConceptCond {
    /// Evaluates the condition on a row.
    pub fn eval(&self, row: &[Value]) -> bool {
        match *self {
            ConceptCond::NumLt { feature, threshold } => row[feature].expect_num() < threshold,
            ConceptCond::NumGe { feature, threshold } => row[feature].expect_num() >= threshold,
            ConceptCond::CatEq { feature, category } => row[feature].expect_cat() == category,
            ConceptCond::CatIn { feature, categories } => {
                categories.contains(&row[feature].expect_cat())
            }
        }
    }

    fn feature(&self) -> usize {
        match *self {
            ConceptCond::NumLt { feature, .. }
            | ConceptCond::NumGe { feature, .. }
            | ConceptCond::CatEq { feature, .. }
            | ConceptCond::CatIn { feature, .. } => feature,
        }
    }
}

/// One rule of a planted concept: a conjunction of conditions and the class
/// it assigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptRule {
    conds: Vec<ConceptCond>,
    class: u32,
}

impl ConceptRule {
    /// Creates a rule from conditions and a class.
    pub fn new(conds: Vec<ConceptCond>, class: u32) -> Self {
        ConceptRule { conds, class }
    }

    /// The class this rule assigns.
    pub fn class(&self) -> u32 {
        self.class
    }

    /// Whether the row satisfies all conditions.
    pub fn matches(&self, row: &[Value]) -> bool {
        self.conds.iter().all(|c| c.eval(row))
    }
}

/// A first-match-wins decision list plus default class.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedConcept {
    rules: Vec<ConceptRule>,
    default_class: u32,
}

impl PlantedConcept {
    /// Creates a concept.
    pub fn new(rules: Vec<ConceptRule>, default_class: u32) -> Self {
        PlantedConcept { rules, default_class }
    }

    /// Rules in evaluation order.
    pub fn rules(&self) -> &[ConceptRule] {
        &self.rules
    }

    /// The default class for rows no rule matches.
    pub fn default_class(&self) -> u32 {
        self.default_class
    }

    /// A copy with rule `index`'s class changed — simulates a policy change
    /// (the paper's premise: "the distribution of future data is different
    /// ... due to a policy change"). Generate a dataset with the edited
    /// concept to obtain post-change data.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_rule_class(&self, index: usize, class: u32) -> PlantedConcept {
        let mut rules = self.rules.clone();
        rules[index] = ConceptRule::new(rules[index].conds.clone(), class);
        PlantedConcept { rules, default_class: self.default_class }
    }

    /// A copy with a different default class.
    pub fn with_default_class(&self, class: u32) -> PlantedConcept {
        PlantedConcept { rules: self.rules.clone(), default_class: class }
    }

    /// Labels a row.
    pub fn label(&self, row: &[Value]) -> u32 {
        for rule in &self.rules {
            if rule.matches(row) {
                return rule.class;
            }
        }
        self.default_class
    }

    /// Validates feature indices and classes against a schema.
    ///
    /// # Panics
    ///
    /// Panics if a condition references a feature index outside the schema,
    /// mismatches its kind, or a class exceeds the schema's class count.
    pub fn validate(&self, schema: &Schema) {
        let n_classes = schema.n_classes() as u32;
        assert!(self.default_class < n_classes, "default class out of range");
        for rule in &self.rules {
            assert!(rule.class < n_classes, "rule class out of range");
            for cond in &rule.conds {
                let j = cond.feature();
                assert!(j < schema.n_features(), "condition references feature {j}");
                let kind = schema.feature(j).kind();
                match cond {
                    ConceptCond::NumLt { .. } | ConceptCond::NumGe { .. } => {
                        assert!(kind.is_numeric(), "numeric condition on categorical feature {j}")
                    }
                    ConceptCond::CatEq { .. } | ConceptCond::CatIn { .. } => assert!(
                        kind.is_categorical(),
                        "categorical condition on numeric feature {j}"
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into(), "r".into()])
            .build()
    }

    fn concept() -> PlantedConcept {
        PlantedConcept::new(
            vec![
                ConceptRule::new(
                    vec![
                        ConceptCond::NumGe { feature: 0, threshold: 10.0 },
                        ConceptCond::CatEq { feature: 1, category: 1 },
                    ],
                    2,
                ),
                ConceptRule::new(vec![ConceptCond::NumLt { feature: 0, threshold: 0.0 }], 1),
            ],
            0,
        )
    }

    #[test]
    fn first_match_wins() {
        let c = concept();
        assert_eq!(c.label(&[Value::Num(12.0), Value::Cat(1)]), 2);
        assert_eq!(c.label(&[Value::Num(-5.0), Value::Cat(1)]), 1);
        assert_eq!(c.label(&[Value::Num(5.0), Value::Cat(0)]), 0);
    }

    #[test]
    fn cat_in_matches_set() {
        let cond = ConceptCond::CatIn { feature: 1, categories: [0, 2] };
        assert!(cond.eval(&[Value::Num(0.0), Value::Cat(2)]));
        assert!(!cond.eval(&[Value::Num(0.0), Value::Cat(1)]));
    }

    #[test]
    fn validate_accepts_good_concept() {
        concept().validate(&schema());
    }

    #[test]
    #[should_panic(expected = "references feature")]
    fn validate_rejects_bad_feature() {
        let c = PlantedConcept::new(
            vec![ConceptRule::new(vec![ConceptCond::NumLt { feature: 9, threshold: 0.0 }], 0)],
            0,
        );
        c.validate(&schema());
    }

    #[test]
    #[should_panic(expected = "numeric condition on categorical")]
    fn validate_rejects_kind_mismatch() {
        let c = PlantedConcept::new(
            vec![ConceptRule::new(vec![ConceptCond::NumLt { feature: 1, threshold: 0.0 }], 0)],
            0,
        );
        c.validate(&schema());
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn validate_rejects_bad_class() {
        let c = PlantedConcept::new(vec![], 9);
        c.validate(&schema());
    }
}
