//! Per-dataset generator specs matching the paper's Table 1 schemas.
//!
//! Feature names follow the real UCI datasets where practical; vocabularies
//! use the real category names for the well-known columns and generic
//! `v0..vk` names elsewhere. The planted concepts are hand-designed decision
//! lists that give each dataset non-trivial, model-learnable class structure
//! touching both numeric and nominal features.

use super::concept::{ConceptCond, ConceptRule, PlantedConcept};
use super::feature::FeatureGen;
use super::SynthSpec;
use crate::schema::Schema;

fn vocab(prefix: &str, k: usize) -> Vec<String> {
    (0..k).map(|i| format!("{prefix}{i}")).collect()
}

fn skewed_weights(k: usize, decay: f64) -> Vec<f64> {
    (0..k).map(|i| decay.powi(i as i32)).collect()
}

/// Adult census income: 4 numeric + 8 nominal, 2 classes, 45222 rows.
pub(super) fn adult() -> SynthSpec {
    let schema = Schema::builder("income", vec!["<=50K".into(), ">50K".into()])
        .numeric("age")
        .numeric("education-num")
        .numeric("capital-gain")
        .numeric("hours-per-week")
        .categorical("workclass", vocab("work", 7))
        .categorical("education", vocab("edu", 8))
        .categorical(
            "marital-status",
            vec!["single".into(), "married".into(), "divorced".into(), "widowed".into()],
        )
        .categorical("occupation", vocab("occ", 10))
        .categorical("relationship", vocab("rel", 6))
        .categorical("race", vocab("race", 5))
        .categorical("sex", vec!["female".into(), "male".into()])
        .categorical("native-country", vocab("country", 10))
        .build();
    let gens = vec![
        FeatureGen::GaussianMixture {
            weights: vec![2.0, 1.0],
            means: vec![34.0, 52.0],
            stds: vec![8.0, 9.0],
        },
        FeatureGen::GaussianMixture {
            weights: vec![3.0, 1.0],
            means: vec![9.5, 14.0],
            stds: vec![2.0, 1.5],
        },
        FeatureGen::GaussianMixture {
            weights: vec![9.0, 1.0],
            means: vec![0.0, 12_000.0],
            stds: vec![500.0, 4_000.0],
        },
        FeatureGen::gaussian(40.0, 10.0),
        FeatureGen::Categorical { weights: skewed_weights(7, 0.6) },
        FeatureGen::Categorical { weights: skewed_weights(8, 0.7) },
        FeatureGen::Categorical { weights: vec![3.0, 4.0, 2.0, 1.0] },
        FeatureGen::Categorical { weights: skewed_weights(10, 0.8) },
        FeatureGen::Categorical { weights: skewed_weights(6, 0.7) },
        FeatureGen::Categorical { weights: skewed_weights(5, 0.4) },
        FeatureGen::Categorical { weights: vec![1.0, 1.4] },
        FeatureGen::Categorical { weights: skewed_weights(10, 0.5) },
    ];
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(vec![ConceptCond::NumGe { feature: 2, threshold: 6_000.0 }], 1),
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 1, threshold: 12.5 },
                    ConceptCond::CatEq { feature: 6, category: 1 },
                    ConceptCond::NumGe { feature: 3, threshold: 38.0 },
                ],
                1,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 0, threshold: 45.0 },
                    ConceptCond::NumGe { feature: 1, threshold: 10.0 },
                    ConceptCond::CatIn { feature: 4, categories: [0, 1] },
                ],
                1,
            ),
        ],
        0,
    );
    SynthSpec::new(schema, gens, concept, 45222)
}

/// Breast Cancer (diagnostic): 30 numeric features, 2 classes, 569 rows.
pub(super) fn breast_cancer() -> SynthSpec {
    let stems = [
        "radius",
        "texture",
        "perimeter",
        "area",
        "smoothness",
        "compactness",
        "concavity",
        "concave-points",
        "symmetry",
        "fractal-dim",
    ];
    let suffixes = ["mean", "se", "worst"];
    let mut builder = Schema::builder("diagnosis", vec!["benign".into(), "malignant".into()]);
    for suffix in suffixes {
        for stem in stems {
            builder = builder.numeric(format!("{stem}-{suffix}"));
        }
    }
    let schema = builder.build();
    let mut gens = Vec::with_capacity(30);
    for j in 0..30 {
        // Two sub-populations with overlapping feature distributions; the
        // first ten ("mean") features carry the most signal.
        let base = 10.0 + j as f64;
        gens.push(FeatureGen::GaussianMixture {
            weights: vec![1.7, 1.0],
            means: vec![base, base + 4.0],
            stds: vec![2.0, 2.5],
        });
    }
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 0, threshold: 13.0 },
                    ConceptCond::NumGe { feature: 3, threshold: 15.5 },
                ],
                1,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 6, threshold: 18.5 },
                    ConceptCond::NumGe { feature: 1, threshold: 12.0 },
                ],
                1,
            ),
        ],
        0,
    );
    SynthSpec::new(schema, gens, concept, 569)
}

/// Nursery: 8 nominal features, 4 classes, 12958 rows.
pub(super) fn nursery() -> SynthSpec {
    let schema = Schema::builder(
        "recommendation",
        vec!["not_recom".into(), "priority".into(), "spec_prior".into(), "very_recom".into()],
    )
    .categorical("parents", vec!["usual".into(), "pretentious".into(), "great_pret".into()])
    .categorical("has_nurs", vocab("nurs", 5))
    .categorical("form", vocab("form", 4))
    .categorical("children", vec!["1".into(), "2".into(), "3".into(), "more".into()])
    .categorical("housing", vocab("housing", 3))
    .categorical("finance", vec!["convenient".into(), "inconv".into()])
    .categorical("social", vocab("social", 3))
    .categorical("health", vec!["recommended".into(), "priority".into(), "not_recom".into()])
    .build();
    let gens = vec![
        FeatureGen::uniform_categorical(3),
        FeatureGen::Categorical { weights: skewed_weights(5, 0.8) },
        FeatureGen::uniform_categorical(4),
        FeatureGen::Categorical { weights: vec![2.0, 2.0, 1.0, 1.0] },
        FeatureGen::uniform_categorical(3),
        FeatureGen::uniform_categorical(2),
        FeatureGen::uniform_categorical(3),
        FeatureGen::uniform_categorical(3),
    ];
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(vec![ConceptCond::CatEq { feature: 7, category: 2 }], 0),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 7, category: 0 },
                    ConceptCond::CatIn { feature: 0, categories: [0, 1] },
                    ConceptCond::CatIn { feature: 6, categories: [0, 1] },
                ],
                3,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 1, category: 4 },
                    ConceptCond::CatEq { feature: 5, category: 1 },
                ],
                2,
            ),
            ConceptRule::new(vec![ConceptCond::CatIn { feature: 1, categories: [3, 4] }], 2),
        ],
        1,
    );
    SynthSpec::new(schema, gens, concept, 12958)
}

/// Wine Quality (white): 11 numeric features, 7 classes, 4898 rows.
pub(super) fn wine_quality() -> SynthSpec {
    let names = [
        "fixed-acidity",
        "volatile-acidity",
        "citric-acid",
        "residual-sugar",
        "chlorides",
        "free-so2",
        "total-so2",
        "density",
        "ph",
        "sulphates",
        "alcohol",
    ];
    let mut builder = Schema::builder("quality", (3..=9).map(|q| q.to_string()).collect());
    for n in names {
        builder = builder.numeric(n);
    }
    let schema = builder.build();
    let params: [(f64, f64); 11] = [
        (6.9, 0.8),
        (0.28, 0.1),
        (0.33, 0.12),
        (6.4, 5.0),
        (0.046, 0.02),
        (35.0, 17.0),
        (138.0, 42.0),
        (0.994, 0.003),
        (3.19, 0.15),
        (0.49, 0.11),
        (10.5, 1.2),
    ];
    let gens = params.iter().map(|&(m, s)| FeatureGen::gaussian(m, s)).collect();
    // Quality tiers driven mostly by alcohol (feature 10) and volatile
    // acidity (feature 1), echoing the real dataset's dominant correlates.
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 10, threshold: 12.6 },
                    ConceptCond::NumLt { feature: 1, threshold: 0.25 },
                ],
                6,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 10, threshold: 12.0 },
                    ConceptCond::NumLt { feature: 1, threshold: 0.32 },
                ],
                5,
            ),
            ConceptRule::new(vec![ConceptCond::NumGe { feature: 10, threshold: 11.0 }], 4),
            ConceptRule::new(
                vec![
                    ConceptCond::NumLt { feature: 10, threshold: 9.2 },
                    ConceptCond::NumGe { feature: 1, threshold: 0.38 },
                ],
                1,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::NumLt { feature: 10, threshold: 8.8 },
                    ConceptCond::NumGe { feature: 4, threshold: 0.07 },
                ],
                0,
            ),
            ConceptRule::new(vec![ConceptCond::NumLt { feature: 10, threshold: 9.8 }], 2),
        ],
        3,
    );
    SynthSpec::new(schema, gens, concept, 4898)
}

/// Mushroom: 21 nominal features, 2 classes, 8124 rows.
pub(super) fn mushroom() -> SynthSpec {
    let cards = [6usize, 4, 10, 2, 9, 2, 2, 2, 12, 2, 5, 4, 4, 9, 9, 4, 3, 5, 9, 6, 7];
    let names = [
        "cap-shape",
        "cap-surface",
        "cap-color",
        "bruises",
        "odor",
        "gill-attachment",
        "gill-spacing",
        "gill-size",
        "gill-color",
        "stalk-shape",
        "stalk-root",
        "stalk-surface-above",
        "stalk-surface-below",
        "stalk-color-above",
        "stalk-color-below",
        "veil-color",
        "ring-number",
        "ring-type",
        "spore-print-color",
        "population",
        "habitat",
    ];
    let mut builder = Schema::builder("class", vec!["edible".into(), "poisonous".into()]);
    for (name, &k) in names.iter().zip(&cards) {
        builder = builder.categorical(*name, vocab(&format!("{name}-"), k));
    }
    let schema = builder.build();
    let gens = cards
        .iter()
        .map(|&k| FeatureGen::Categorical { weights: skewed_weights(k, 0.75) })
        .collect();
    // Odor (feature 4) nearly determines edibility in the real dataset.
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(vec![ConceptCond::CatIn { feature: 4, categories: [3, 4] }], 1),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 18, category: 2 },
                    ConceptCond::CatEq { feature: 7, category: 1 },
                ],
                1,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::CatIn { feature: 4, categories: [0, 1] },
                    ConceptCond::CatEq { feature: 3, category: 1 },
                ],
                0,
            ),
            ConceptRule::new(vec![ConceptCond::CatIn { feature: 19, categories: [4, 5] }], 1),
        ],
        0,
    );
    SynthSpec::new(schema, gens, concept, 8124)
}

/// Contraceptive method choice: 2 numeric + 7 nominal, 3 classes, 1473 rows.
pub(super) fn contraceptive() -> SynthSpec {
    let schema =
        Schema::builder("method", vec!["none".into(), "long-term".into(), "short-term".into()])
            .numeric("wife-age")
            .numeric("n-children")
            .categorical("wife-education", vocab("wedu", 4))
            .categorical("husband-education", vocab("hedu", 4))
            .categorical("wife-religion", vec!["non-islam".into(), "islam".into()])
            .categorical("wife-working", vec!["yes".into(), "no".into()])
            .categorical("husband-occupation", vocab("hocc", 4))
            .categorical("living-standard", vocab("std", 4))
            .categorical("media-exposure", vec!["good".into(), "not-good".into()])
            .build();
    let gens = vec![
        FeatureGen::gaussian(32.5, 8.2),
        FeatureGen::GaussianMixture {
            weights: vec![1.0, 1.0],
            means: vec![1.5, 5.0],
            stds: vec![1.0, 2.0],
        },
        FeatureGen::Categorical { weights: vec![1.0, 2.0, 3.0, 4.0] },
        FeatureGen::Categorical { weights: vec![1.0, 2.0, 3.0, 5.0] },
        FeatureGen::Categorical { weights: vec![1.0, 5.0] },
        FeatureGen::Categorical { weights: vec![1.0, 3.0] },
        FeatureGen::uniform_categorical(4),
        FeatureGen::Categorical { weights: vec![1.0, 2.0, 3.0, 4.0] },
        FeatureGen::Categorical { weights: vec![12.0, 1.0] },
    ];
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(vec![ConceptCond::NumLt { feature: 1, threshold: 0.5 }], 0),
            ConceptRule::new(
                vec![
                    ConceptCond::NumGe { feature: 0, threshold: 38.0 },
                    ConceptCond::NumGe { feature: 1, threshold: 3.0 },
                ],
                1,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 2, category: 3 },
                    ConceptCond::NumLt { feature: 0, threshold: 34.0 },
                ],
                2,
            ),
            ConceptRule::new(vec![ConceptCond::CatEq { feature: 8, category: 1 }], 0),
        ],
        2,
    );
    SynthSpec::new(schema, gens, concept, 1473)
}

/// Car evaluation: 6 nominal features, 4 classes, 1728 rows.
pub(super) fn car() -> SynthSpec {
    let schema = Schema::builder(
        "acceptability",
        vec!["unacc".into(), "acc".into(), "good".into(), "vgood".into()],
    )
    .categorical("buying", vec!["vhigh".into(), "high".into(), "med".into(), "low".into()])
    .categorical("maint", vec!["vhigh".into(), "high".into(), "med".into(), "low".into()])
    .categorical("doors", vec!["2".into(), "3".into(), "4".into(), "5more".into()])
    .categorical("persons", vec!["2".into(), "4".into(), "more".into()])
    .categorical("lug_boot", vec!["small".into(), "med".into(), "big".into()])
    .categorical("safety", vec!["low".into(), "med".into(), "high".into()])
    .build();
    let gens = vec![
        FeatureGen::uniform_categorical(4),
        FeatureGen::uniform_categorical(4),
        FeatureGen::uniform_categorical(4),
        FeatureGen::uniform_categorical(3),
        FeatureGen::uniform_categorical(3),
        FeatureGen::uniform_categorical(3),
    ];
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(vec![ConceptCond::CatEq { feature: 5, category: 0 }], 0),
            ConceptRule::new(vec![ConceptCond::CatEq { feature: 3, category: 0 }], 0),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 5, category: 2 },
                    ConceptCond::CatIn { feature: 0, categories: [2, 3] },
                    ConceptCond::CatIn { feature: 1, categories: [2, 3] },
                ],
                3,
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 5, category: 2 },
                    ConceptCond::CatIn { feature: 0, categories: [1, 2] },
                ],
                2,
            ),
            ConceptRule::new(vec![ConceptCond::CatIn { feature: 0, categories: [0, 1] }], 0),
        ],
        1,
    );
    SynthSpec::new(schema, gens, concept, 1728)
}

/// Splice-junction sequences: 60 nominal (A/C/G/T) features, 3 classes, 3190 rows.
pub(super) fn splice() -> SynthSpec {
    let bases = vec!["A".to_string(), "C".to_string(), "G".to_string(), "T".to_string()];
    let mut builder = Schema::builder("junction", vec!["EI".into(), "IE".into(), "N".into()]);
    for pos in 0..60 {
        builder = builder.categorical(format!("p{}", pos - 30), bases.clone());
    }
    let schema = builder.build();
    let gens = (0..60).map(|_| FeatureGen::uniform_categorical(4)).collect();
    // Donor (GT after position 0) and acceptor (AG before position 0) motifs,
    // mirroring the real biology the dataset encodes. Feature 30 is position
    // "+0" in the naming above.
    let concept = PlantedConcept::new(
        vec![
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 30, category: 2 }, // G
                    ConceptCond::CatEq { feature: 31, category: 3 }, // T
                ],
                0, // EI (donor)
            ),
            ConceptRule::new(
                vec![
                    ConceptCond::CatEq { feature: 28, category: 0 }, // A
                    ConceptCond::CatEq { feature: 29, category: 2 }, // G
                ],
                1, // IE (acceptor)
            ),
        ],
        2, // N
    );
    SynthSpec::new(schema, gens, concept, 3190)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn all_specs_validate_against_their_schemas() {
        // SynthSpec::new panics on invalid specs; constructing is the test.
        let _ = adult();
        let _ = breast_cancer();
        let _ = nursery();
        let _ = wine_quality();
        let _ = mushroom();
        let _ = contraceptive();
        let _ = car();
        let _ = splice();
    }

    #[test]
    fn adult_concept_has_minority_high_income() {
        let ds = adult().generate(&SynthConfig { n_rows: 4000, ..Default::default() });
        let counts = ds.class_counts();
        assert!(counts[1] > 100, "high-income class too rare: {counts:?}");
        assert!(counts[0] > counts[1], "low income should dominate: {counts:?}");
    }

    #[test]
    fn splice_motifs_drive_labels() {
        let spec = splice();
        let ds = spec.generate(&SynthConfig { n_rows: 2000, noise: 0.0, ..Default::default() });
        // Rows labelled EI must carry the GT motif.
        for i in 0..ds.n_rows() {
            if ds.label(i) == 0 {
                assert_eq!(ds.value(i, 30).expect_cat(), 2);
                assert_eq!(ds.value(i, 31).expect_cat(), 3);
            }
        }
    }

    #[test]
    fn car_unacceptable_on_low_safety() {
        let spec = car();
        let ds = spec.generate(&SynthConfig { n_rows: 1000, noise: 0.0, ..Default::default() });
        for i in 0..ds.n_rows() {
            if ds.value(i, 5).expect_cat() == 0 {
                assert_eq!(ds.label(i), 0);
            }
        }
    }
}
