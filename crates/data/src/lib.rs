//! # frote-data
//!
//! Columnar, mixed-type tabular dataset substrate for the FROTE (MLSys 2022)
//! reproduction.
//!
//! The FROTE paper evaluates on eight UCI tabular benchmarks with a mix of
//! numeric and nominal attributes (its Table 1). This crate provides:
//!
//! - [`Value`], [`FeatureKind`], [`Schema`] — typed cell values and dataset
//!   schemas with categorical vocabularies,
//! - [`Dataset`] and [`Column`] — a columnar store with cheap coverage scans
//!   and per-column statistics,
//! - [`FeatureMatrix`] — the flat row-major encoded data plane shared by the
//!   batch scoring and nearest-neighbour paths,
//! - [`encode`] — one-hot + standardization encoding into [`FeatureMatrix`]
//!   for linear models and distance computations (incrementally appendable
//!   via [`EncodedCache`]),
//! - [`binned`] — quantized per-feature bin codes ([`Binner`] /
//!   [`BinnedMatrix`] / [`BinnedCache`]) for histogram tree training,
//! - [`sharded`] — the chunked out-of-core data plane ([`ShardedMatrix`] /
//!   [`ShardedCache`]): fixed-size row shards behind the `FeatureMatrix`
//!   contract, with bit-exact spill/load to disk,
//! - [`split`] — deterministic train/test splitting utilities,
//! - [`csv`] — a small typed CSV reader/writer,
//! - [`synth`] — schema-matched synthetic generators for the eight UCI
//!   datasets (the reproduction's substitute for the network-gated downloads;
//!   see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use frote_data::{Dataset, Schema, Value};
//!
//! let schema = Schema::builder("label", vec!["no".into(), "yes".into()])
//!     .numeric("age")
//!     .categorical("marital", vec!["single".into(), "married".into()])
//!     .build();
//! let mut ds = Dataset::new(schema);
//! ds.push_row(&[Value::Num(37.0), Value::Cat(1)], 0).unwrap();
//! ds.push_row(&[Value::Num(24.0), Value::Cat(0)], 1).unwrap();
//! assert_eq!(ds.n_rows(), 2);
//! assert_eq!(ds.class_counts(), vec![1, 1]);
//! ```

#![warn(missing_docs)]

pub mod binned;
mod column;
pub mod csv;
mod dataset;
pub mod encode;
mod error;
mod matrix;
mod schema;
pub mod sharded;
pub mod split;
pub mod stats;
pub mod sync;
pub mod synth;
mod value;

pub use binned::{BinnedCache, BinnedMatrix, Binner};
pub use column::Column;
pub use dataset::Dataset;
pub use encode::{EncodedCache, Encoder};
pub use error::DataError;
pub use matrix::FeatureMatrix;
pub use schema::{FeatureMeta, Schema, SchemaBuilder};
pub use sharded::{ShardIoError, ShardIoOp, ShardedCache, ShardedMatrix};
pub use sync::{RebuildReason, SyncOutcome};
pub use value::{FeatureKind, Value};
