//! Cell values and feature kinds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of a feature column.
///
/// The FROTE paper distinguishes numeric attributes (operators
/// `=, >, >=, <, <=`) from categorical ones (operators `=, !=`); the split is
/// carried here and consulted by the rules engine and the encoders.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Real-valued attribute.
    Numeric,
    /// Nominal attribute with a fixed vocabulary of category names. Cell
    /// values are indices into this vocabulary.
    Categorical {
        /// Category names; a cell value `Cat(i)` refers to `categories[i]`.
        categories: Vec<String>,
    },
}

impl FeatureKind {
    /// Returns `true` for [`FeatureKind::Numeric`].
    pub fn is_numeric(&self) -> bool {
        matches!(self, FeatureKind::Numeric)
    }

    /// Returns `true` for [`FeatureKind::Categorical`].
    pub fn is_categorical(&self) -> bool {
        matches!(self, FeatureKind::Categorical { .. })
    }

    /// Number of categories, or `None` for numeric features.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            FeatureKind::Numeric => None,
            FeatureKind::Categorical { categories } => Some(categories.len()),
        }
    }
}

/// A single typed cell value.
///
/// `Cat` holds an index into the owning column's category vocabulary (see
/// [`FeatureKind::Categorical`]); keeping indices rather than strings makes
/// coverage scans and distance computations branch-cheap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Numeric cell.
    Num(f64),
    /// Categorical cell (vocabulary index).
    Cat(u32),
}

impl Value {
    /// Returns the numeric payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is categorical. Use [`Value::as_num`] for a
    /// non-panicking accessor.
    pub fn expect_num(self) -> f64 {
        match self {
            Value::Num(x) => x,
            Value::Cat(c) => panic!("expected numeric value, found categorical index {c}"),
        }
    }

    /// Returns the categorical index payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is numeric. Use [`Value::as_cat`] for a
    /// non-panicking accessor.
    pub fn expect_cat(self) -> u32 {
        match self {
            Value::Cat(c) => c,
            Value::Num(x) => panic!("expected categorical value, found numeric {x}"),
        }
    }

    /// Returns the numeric payload if this is a [`Value::Num`].
    pub fn as_num(self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(x),
            Value::Cat(_) => None,
        }
    }

    /// Returns the categorical index if this is a [`Value::Cat`].
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(c),
            Value::Num(_) => None,
        }
    }

    /// Whether this value's variant matches the feature kind.
    pub fn matches_kind(self, kind: &FeatureKind) -> bool {
        match (self, kind) {
            (Value::Num(_), FeatureKind::Numeric) => true,
            (Value::Cat(c), FeatureKind::Categorical { categories }) => {
                (c as usize) < categories.len()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Cat(c) => write!(f, "#{c}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<u32> for Value {
    fn from(c: u32) -> Self {
        Value::Cat(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let num = FeatureKind::Numeric;
        let cat = FeatureKind::Categorical { categories: vec!["a".into(), "b".into()] };
        assert!(num.is_numeric() && !num.is_categorical());
        assert!(cat.is_categorical() && !cat.is_numeric());
        assert_eq!(num.cardinality(), None);
        assert_eq!(cat.cardinality(), Some(2));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Num(1.5).as_num(), Some(1.5));
        assert_eq!(Value::Num(1.5).as_cat(), None);
        assert_eq!(Value::Cat(3).as_cat(), Some(3));
        assert_eq!(Value::Cat(3).as_num(), None);
        assert_eq!(Value::Num(2.0).expect_num(), 2.0);
        assert_eq!(Value::Cat(7).expect_cat(), 7);
    }

    #[test]
    #[should_panic(expected = "expected numeric")]
    fn expect_num_panics_on_cat() {
        Value::Cat(0).expect_num();
    }

    #[test]
    #[should_panic(expected = "expected categorical")]
    fn expect_cat_panics_on_num() {
        Value::Num(0.0).expect_cat();
    }

    #[test]
    fn matches_kind_checks_vocab_bounds() {
        let cat = FeatureKind::Categorical { categories: vec!["a".into()] };
        assert!(Value::Cat(0).matches_kind(&cat));
        assert!(!Value::Cat(1).matches_kind(&cat));
        assert!(!Value::Num(0.0).matches_kind(&cat));
        assert!(Value::Num(0.0).matches_kind(&FeatureKind::Numeric));
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Value::from(2.5_f64).to_string(), "2.5");
        assert_eq!(Value::from(4_u32).to_string(), "#4");
    }
}
