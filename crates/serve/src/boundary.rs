//! Serve-time input validation: the rule engine as the constraint layer.
//!
//! Request bodies are parsed against the target model's schema — one row
//! per line, comma-separated cells, categorical cells by category name,
//! numeric cells as decimal floats (the same rendering [`frote_data::csv`]
//! uses, minus the label column). Wrong arity, unknown categories, and
//! unparsable numeric cells surface [`ServeError::Row`] with the offending
//! line number before anything else runs.
//!
//! Rows that *parse* are then swept through a [`RowGuard`]: schema
//! constraints (`dfq_not_null` / `dfq_in_range` style) compiled onto the
//! PR 6 columnar engine's [`RowMask`] sweeps via the fallible
//! [`CompiledClause::compile`] path. A NaN cell fails every numeric
//! predicate by the engine's pinned NaN semantics, so `x >= -inf` is
//! exactly "x is not null" — the guard rejects such rows with a structured
//! [`ServeError::RowsRejected`] instead of letting them panic a worker
//! later (e.g. in `Binner::bin_value`, which panics on NaN by contract).

use std::sync::Arc;

use frote_data::stats::NumericStats;
use frote_data::{Dataset, FeatureKind, Schema, Value};
use frote_rules::{Clause, CompiledClause, Op, Predicate, RowMask};

use crate::ServeError;

/// Parses a request body into a scoring [`Dataset`] over `schema`.
///
/// Labels are not part of the wire format; parsed rows carry class 0 (the
/// label column is never read on the predict path).
///
/// # Errors
///
/// [`ServeError::Row`] naming the first malformed row (1-based): wrong
/// arity, unknown category, or unparsable numeric cell. An empty body (no
/// non-blank lines) is an error — a score request must carry rows.
pub fn parse_rows(schema: &Arc<Schema>, body: &str) -> Result<Dataset, ServeError> {
    let mut ds = Dataset::with_shared_schema(Arc::clone(schema));
    let mut row = Vec::with_capacity(schema.n_features());
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        row.clear();
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != schema.n_features() {
            return Err(ServeError::Row {
                line: lineno,
                detail: format!(
                    "wrong arity: expected {} cells, got {}",
                    schema.n_features(),
                    cells.len()
                ),
            });
        }
        for (j, cell) in cells.iter().enumerate() {
            let meta = schema.feature(j);
            match meta.kind() {
                FeatureKind::Numeric => {
                    // NaN parses on purpose: null-ness is the *guard's*
                    // finding, with rule provenance, not a parse error.
                    let x: f64 = cell.trim().parse().map_err(|_| ServeError::Row {
                        line: lineno,
                        detail: format!("feature {:?}: unparsable numeric {cell:?}", meta.name()),
                    })?;
                    row.push(Value::Num(x));
                }
                FeatureKind::Categorical { categories } => {
                    let cell = cell.trim();
                    let code = categories.iter().position(|c| c == cell).ok_or_else(|| {
                        ServeError::Row {
                            line: lineno,
                            detail: format!(
                                "feature {:?}: unknown category {cell:?} (vocabulary: {categories:?})",
                                meta.name()
                            ),
                        }
                    })?;
                    row.push(Value::Cat(code as u32));
                }
            }
        }
        ds.push_row(&row, 0)
            .map_err(|e| ServeError::Row { line: lineno, detail: e.to_string() })?;
    }
    if ds.is_empty() {
        return Err(ServeError::BadRequest { detail: "empty request: no rows".to_string() });
    }
    Ok(ds)
}

/// A compiled serve-time constraint: rows failing it are rejected at the
/// boundary, with the guard's display form in the error.
///
/// Construction goes through [`CompiledClause::compile`] — the fallible
/// pre-validation path — so a guard that does not fit the schema surfaces
/// a [`frote_rules::RuleError`] at build time, never a mid-scan panic.
#[derive(Debug, Clone)]
pub struct RowGuard {
    compiled: CompiledClause,
    display: String,
}

impl RowGuard {
    /// A `dfq_not_null`-style guard: every numeric feature must be non-NaN.
    ///
    /// Compiles `feature >= -inf` per numeric feature; by the engine's NaN
    /// trichotomy (every comparison on a NaN cell is false) the conjunction
    /// is true exactly for rows with no NaN cells. Categorical cells cannot
    /// be null post-parse, so they contribute no predicate.
    ///
    /// # Errors
    ///
    /// Propagates [`frote_rules::RuleError`] from compilation (unreachable
    /// for a well-formed schema, but the `try_*` contract is kept).
    pub fn not_null(schema: &Schema) -> Result<RowGuard, ServeError> {
        let preds = numeric_features(schema)
            .map(|j| Predicate::new(j, Op::Ge, Value::Num(f64::NEG_INFINITY)))
            .collect();
        RowGuard::from_clause(Clause::new(preds), schema)
    }

    /// A `dfq_in_range`-style guard: non-null plus every numeric feature
    /// inside the `[min, max]` observed on the training dataset `fit` —
    /// the serve-time twin of a data-quality range constraint.
    ///
    /// # Errors
    ///
    /// As [`RowGuard::not_null`].
    pub fn in_range(schema: &Schema, fit: &Dataset) -> Result<RowGuard, ServeError> {
        let mut preds = Vec::new();
        for j in numeric_features(schema) {
            let values = fit.column(j).as_numeric().expect("numeric feature has numeric column");
            let stats = NumericStats::of(values);
            preds.push(Predicate::new(j, Op::Ge, Value::Num(stats.min)));
            preds.push(Predicate::new(j, Op::Le, Value::Num(stats.max)));
        }
        RowGuard::from_clause(Clause::new(preds), schema)
    }

    /// Compiles an arbitrary constraint clause into a guard.
    ///
    /// # Errors
    ///
    /// Propagates [`frote_rules::RuleError`] from the `try_*` compile path.
    pub fn from_clause(clause: Clause, schema: &Schema) -> Result<RowGuard, ServeError> {
        let display = clause.display_with(schema).to_string();
        let compiled = CompiledClause::compile(&clause, schema)?;
        Ok(RowGuard { compiled, display })
    }

    /// The guard constraint in rule syntax (used in rejection messages).
    pub fn display(&self) -> &str {
        &self.display
    }

    /// The satisfied-rows mask over `ds` — one columnar sweep, parallel
    /// past the engine's block threshold.
    pub fn mask(&self, ds: &Dataset) -> RowMask {
        self.compiled.eval(ds)
    }

    /// Checks every row of `ds`, returning the indices of rejected rows as
    /// a structured error.
    ///
    /// # Errors
    ///
    /// [`ServeError::RowsRejected`] listing every row whose cells violate
    /// the guard.
    pub fn check(&self, ds: &Dataset) -> Result<(), ServeError> {
        let mask = self.mask(ds);
        if mask.count() == ds.n_rows() {
            return Ok(());
        }
        Err(ServeError::RowsRejected {
            rows: mask.inverted().indices(),
            guard: self.display.clone(),
        })
    }
}

/// Renders `indices` of `ds` in the wire row format [`parse_rows`]
/// accepts — the exact inverse: numeric cells via `f64`'s shortest
/// round-trip `Display`, categorical cells by name. Load generators and
/// perf probes use this to build request bodies whose parsed form is
/// bit-identical to the source rows.
pub fn render_rows(ds: &Dataset, indices: &[usize]) -> String {
    let schema = ds.schema();
    let mut out = String::new();
    for &i in indices {
        for j in 0..schema.n_features() {
            if j > 0 {
                out.push(',');
            }
            match ds.cell(i, j) {
                Value::Num(x) => out.push_str(&format!("{x}")),
                Value::Cat(c) => match schema.feature(j).kind() {
                    FeatureKind::Categorical { categories } => {
                        out.push_str(&categories[c as usize]);
                    }
                    FeatureKind::Numeric => unreachable!("Cat value in numeric column"),
                },
            }
        }
        out.push('\n');
    }
    out
}

fn numeric_features(schema: &Schema) -> impl Iterator<Item = usize> + '_ {
    (0..schema.n_features()).filter(|&j| schema.feature(j).kind().is_numeric())
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::Schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder("y", vec!["no".into(), "yes".into()])
                .numeric("age")
                .categorical("job", vec!["eng".into(), "law".into()])
                .build(),
        )
    }

    #[test]
    fn parses_well_formed_rows() {
        let s = schema();
        let ds = parse_rows(&s, "30,eng\n41.5,law\n").unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.cell(1, 0), Value::Num(41.5));
        assert_eq!(ds.cell(1, 1), Value::Cat(1));
    }

    #[test]
    fn wrong_arity_is_row_error() {
        let err = parse_rows(&schema(), "30,eng\n41.5\n").unwrap_err();
        assert_eq!(
            std::mem::discriminant(&err),
            std::mem::discriminant(&ServeError::Row { line: 0, detail: String::new() })
        );
        assert!(err.to_string().contains("row 2"), "got {err}");
        assert!(err.to_string().contains("arity"), "got {err}");
    }

    #[test]
    fn unknown_category_is_row_error() {
        let err = parse_rows(&schema(), "30,ceo\n").unwrap_err();
        assert!(err.to_string().contains("unknown category"), "got {err}");
    }

    #[test]
    fn unparsable_numeric_is_row_error() {
        let err = parse_rows(&schema(), "thirty,eng\n").unwrap_err();
        assert!(err.to_string().contains("unparsable numeric"), "got {err}");
    }

    #[test]
    fn empty_body_is_bad_request() {
        let err = parse_rows(&schema(), "\n\n").unwrap_err();
        assert!(matches!(err, ServeError::BadRequest { .. }), "got {err:?}");
    }

    #[test]
    fn not_null_guard_rejects_nan_rows_only() {
        let s = schema();
        let ds = parse_rows(&s, "30,eng\nNaN,law\n7,law\n").unwrap();
        let guard = RowGuard::not_null(&s).unwrap();
        let err = guard.check(&ds).unwrap_err();
        match err {
            ServeError::RowsRejected { rows, guard } => {
                assert_eq!(rows, vec![1]);
                assert!(guard.contains("age"), "guard display names the feature: {guard}");
            }
            other => panic!("expected RowsRejected, got {other:?}"),
        }
        let clean = parse_rows(&s, "30,eng\n").unwrap();
        guard.check(&clean).unwrap();
    }

    #[test]
    fn in_range_guard_rejects_out_of_range() {
        let s = schema();
        let fit = parse_rows(&s, "10,eng\n20,law\n").unwrap();
        let guard = RowGuard::in_range(&s, &fit).unwrap();
        guard.check(&parse_rows(&s, "15,eng\n").unwrap()).unwrap();
        let err = guard.check(&parse_rows(&s, "15,eng\n99,law\n").unwrap()).unwrap_err();
        assert!(matches!(err, ServeError::RowsRejected { ref rows, .. } if rows == &vec![1]));
        // NaN also fails the range guard: comparisons on NaN are all false.
        let err = guard.check(&parse_rows(&s, "NaN,eng\n").unwrap()).unwrap_err();
        assert!(matches!(err, ServeError::RowsRejected { .. }));
    }

    #[test]
    fn render_rows_roundtrips_through_parse_rows() {
        let s = schema();
        let ds = parse_rows(&s, "30,eng\n41.5,law\n0.1234567890123456,eng\n").unwrap();
        let body = render_rows(&ds, &[0, 1, 2]);
        let back = parse_rows(&s, &body).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        for i in 0..ds.n_rows() {
            for j in 0..s.n_features() {
                assert_eq!(back.cell(i, j), ds.cell(i, j), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn all_categorical_schema_guard_is_vacuous() {
        let s = Arc::new(
            Schema::builder("y", vec!["a".into(), "b".into()])
                .categorical("color", vec!["red".into(), "blue".into()])
                .build(),
        );
        let guard = RowGuard::not_null(&s).unwrap();
        guard.check(&parse_rows(&s, "red\nblue\n").unwrap()).unwrap();
    }
}
