//! Request micro-batching: many concurrent score requests, one
//! `predict_rows` call.
//!
//! Connection handlers never score; they [`Batcher::submit`] validated row
//! sets and block on a reply channel. A single batching worker drains the
//! queue: it takes the oldest job as the batch leader, pulls every queued
//! job targeting the *same model entry* up to the row budget, concatenates
//! the rows into one dataset, resolves the entry's current snapshot
//! **once**, and scores the whole batch with one
//! [`frote_ml::Classifier::predict_rows`] call over the `frote-par` pool.
//! While the worker is busy scoring batch *k*, arrivals queue up and form
//! batch *k+1* — classic leader-based batching with no artificial delay
//! window, so an idle server adds one handoff of latency and a busy server
//! amortizes scoring across every waiting request.
//!
//! Because a batch is scored against exactly one snapshot, every response
//! is consistent with exactly one published generation — the invariant the
//! snapshot-swap integration test pins bit-for-bit.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use frote_data::Dataset;
use frote_obs::{Counter, Gauge, Histogram};

use crate::registry::ModelEntry;
use crate::ServeError;

/// Score requests accepted into the queue. Fixed workloads produce fixed
/// totals, so `benchdiff` gates this like an output hash.
static REQUESTS: Counter = Counter::new("serve.requests");
/// Rows scored across all batches — also workload-determined.
static ROWS_SCORED: Counter = Counter::new("serve.rows_scored");
/// Micro-batches executed. Batch composition depends on arrival timing,
/// so the count legitimately varies run to run.
static BATCHES: Counter = Counter::thread_variant("serve.batches");
/// High-water rows aggregated into one micro-batch.
static BATCH_ROWS_MAX: Gauge = Gauge::thread_variant("serve.batch_rows_max");
/// High-water queue depth (jobs waiting when a batch was formed).
static QUEUE_DEPTH: Gauge = Gauge::thread_variant("serve.queue_depth");
/// Requests shed by admission control: the queue was at capacity, the
/// caller got a structured `503 Overloaded`. Depends on arrival timing.
static SHED_REQUESTS: Counter = Counter::thread_variant("serve.shed_requests");
/// Wall-clock of one micro-batch: snapshot resolve + concat + predict +
/// reply fan-out.
static BATCH_SPAN: Histogram = Histogram::new("serve.batch_ns");

/// Default row budget per micro-batch.
pub const DEFAULT_MAX_BATCH_ROWS: usize = 4096;

/// Default bound on queued jobs before admission control sheds
/// ([`ServeError::Overloaded`] → `503` + `Retry-After`). Keyed on the same
/// queue the `serve.queue_depth` gauge watches.
pub const DEFAULT_MAX_QUEUE_DEPTH: usize = 128;

/// One scored batch's slice for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreResponse {
    /// Generation of the snapshot the batch was scored against.
    pub generation: u64,
    /// Hard predictions, one per submitted row, in submission order.
    pub predictions: Vec<u32>,
}

struct Job {
    rows: Dataset,
    entry: Arc<ModelEntry>,
    reply: mpsc::Sender<ScoreResponse>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    open: AtomicBool,
    max_batch_rows: usize,
    max_queue_depth: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The micro-batching scorer: a queue plus one worker thread.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts a batcher with the given per-batch row budget and queue
    /// depth bound (each clamped to at least 1).
    pub fn start(max_batch_rows: usize, max_queue_depth: usize) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            open: AtomicBool::new(true),
            max_batch_rows: max_batch_rows.max(1),
            max_queue_depth: max_queue_depth.max(1),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("frote-serve-batcher".to_string())
            .spawn(move || batch_loop(&worker_shared))
            .expect("spawn batcher thread");
        Batcher { shared, worker: Mutex::new(Some(worker)) }
    }

    /// Submits `rows` (already parsed and guard-checked) for scoring
    /// against `entry`'s current snapshot and blocks until the containing
    /// micro-batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at its depth bound
    /// (admission control: shed at the door, never queue unboundedly);
    /// [`ServeError::Unavailable`] when the batcher is shut down, or the
    /// scoring worker dropped the reply without answering (an injected
    /// batch fault or a model panic — the worker itself lives on).
    pub fn submit(
        &self,
        entry: Arc<ModelEntry>,
        rows: Dataset,
    ) -> Result<ScoreResponse, ServeError> {
        if !self.shared.open.load(Ordering::Acquire) {
            return Err(ServeError::Unavailable);
        }
        let (reply, done) = mpsc::channel();
        {
            let mut queue = lock(&self.shared.queue);
            if queue.len() >= self.shared.max_queue_depth {
                SHED_REQUESTS.inc();
                return Err(ServeError::Overloaded);
            }
            REQUESTS.inc();
            queue.push_back(Job { rows, entry, reply });
            QUEUE_DEPTH.set_max(queue.len() as f64);
        }
        self.shared.available.notify_one();
        done.recv().map_err(|_| ServeError::Unavailable)
    }

    /// Closes the queue and joins the worker. Jobs already queued are
    /// drained (scored and answered) before the worker exits; submissions
    /// after this call get [`ServeError::Unavailable`].
    pub fn shutdown(&self) {
        self.shared.open.store(false, Ordering::Release);
        self.shared.available.notify_all();
        if let Some(worker) = lock(&self.worker).take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batch_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut queue = lock(&shared.queue);
            loop {
                if !queue.is_empty() {
                    break;
                }
                if !shared.open.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
            take_batch(&mut queue, shared.max_batch_rows)
        };
        let _span = BATCH_SPAN.span();
        // The whole batch execution is unwind-guarded: an injected drain
        // fault or panic fails *this batch's* requests (their replies are
        // dropped -> structured 503 at the boundary) and the worker loops
        // on — the batcher never dies mid-chaos.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            if frote_faults::point("serve.batch.drain").is_err() {
                return;
            }
            run_batch(batch);
        }));
    }
}

/// Pops the leader plus every queued job for the same model entry, up to
/// the row budget (the leader is taken even if it alone exceeds it).
fn take_batch(queue: &mut VecDeque<Job>, max_batch_rows: usize) -> Vec<Job> {
    let leader = queue.pop_front().expect("caller checked non-empty");
    let mut rows = leader.rows.n_rows();
    let mut batch = vec![leader];
    let mut i = 0;
    while i < queue.len() {
        let candidate = &queue[i];
        if Arc::ptr_eq(&candidate.entry, &batch[0].entry)
            && rows + candidate.rows.n_rows() <= max_batch_rows
        {
            let job = queue.remove(i).expect("index in bounds");
            rows += job.rows.n_rows();
            batch.push(job);
        } else {
            i += 1;
        }
    }
    batch
}

fn run_batch(batch: Vec<Job>) {
    let entry = Arc::clone(&batch[0].entry);
    // ONE snapshot resolution per batch: every row in the batch is scored
    // against the same published generation.
    let snapshot = entry.current();
    let total_rows: usize = batch.iter().map(|j| j.rows.n_rows()).sum();
    BATCHES.inc();
    BATCH_ROWS_MAX.set_max(total_rows as f64);

    let scored = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<u32>, ServeError> {
        frote_faults::point("serve.batch.predict")?;
        let mut combined = Dataset::with_shared_schema(Arc::clone(snapshot.schema()));
        for job in &batch {
            combined.extend_from(&job.rows).expect("schema pinned by the entry");
        }
        let indices: Vec<usize> = (0..combined.n_rows()).collect();
        Ok(snapshot.model().predict_rows(&combined, &indices))
    }));
    let Ok(Ok(predictions)) = scored else {
        // A model panic or injected predict fault must not kill the
        // batcher: dropping the replies fails the affected requests with
        // `Unavailable` (a structured 503 at the boundary); the worker
        // lives on. Validated input should never get here un-injected.
        return;
    };
    ROWS_SCORED.add(total_rows as u64);

    let mut offset = 0;
    for job in batch {
        let n = job.rows.n_rows();
        let slice = predictions[offset..offset + n].to_vec();
        offset += n;
        // A handler that timed out / disconnected just drops its receiver;
        // that is not the batcher's problem.
        let _ =
            job.reply.send(ScoreResponse { generation: snapshot.generation(), predictions: slice });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::RowGuard;
    use crate::registry::{ModelRegistry, Snapshot};
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_ml::tree::{DecisionTreeTrainer, TreeParams};

    fn setup() -> (ModelRegistry, Arc<ModelEntry>, Dataset) {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 200, ..Default::default() });
        let trainer =
            DecisionTreeTrainer::new(TreeParams { max_depth: 4, ..Default::default() }, 7);
        let guard = RowGuard::not_null(ds.schema()).unwrap();
        let registry = ModelRegistry::new();
        let entry = registry.register("car", Snapshot::fit(&trainer, &ds, guard), None);
        (registry, entry, ds)
    }

    fn probe(ds: &Dataset, range: std::ops::Range<usize>) -> Dataset {
        ds.gather(&range.collect::<Vec<_>>())
    }

    #[test]
    fn batched_predictions_match_direct_predict_rows() {
        let (_registry, entry, ds) = setup();
        let batcher = Batcher::start(DEFAULT_MAX_BATCH_ROWS, DEFAULT_MAX_QUEUE_DEPTH);
        let rows = probe(&ds, 0..32);
        let resp = batcher.submit(Arc::clone(&entry), rows.clone()).unwrap();
        assert_eq!(resp.generation, 1);
        let indices: Vec<usize> = (0..rows.n_rows()).collect();
        let direct = entry.current().model().predict_rows(&rows, &indices);
        assert_eq!(resp.predictions, direct);
    }

    #[test]
    fn concurrent_submissions_all_answered_consistently() {
        let (_registry, entry, ds) = setup();
        let batcher = Arc::new(Batcher::start(DEFAULT_MAX_BATCH_ROWS, DEFAULT_MAX_QUEUE_DEPTH));
        let expected = {
            let indices: Vec<usize> = (0..ds.n_rows()).collect();
            entry.current().model().predict_rows(&ds, &indices)
        };
        std::thread::scope(|scope| {
            for t in 0..8 {
                let batcher = Arc::clone(&batcher);
                let entry = Arc::clone(&entry);
                let ds = &ds;
                let expected = &expected;
                scope.spawn(move || {
                    for k in 0..5 {
                        let start = (t * 17 + k * 7) % (ds.n_rows() - 8);
                        let rows = probe(ds, start..start + 8);
                        let resp = batcher.submit(Arc::clone(&entry), rows).unwrap();
                        assert_eq!(resp.predictions, expected[start..start + 8].to_vec());
                    }
                });
            }
        });
    }

    #[test]
    fn shutdown_rejects_new_and_drains_old() {
        let (_registry, entry, ds) = setup();
        let batcher = Batcher::start(DEFAULT_MAX_BATCH_ROWS, DEFAULT_MAX_QUEUE_DEPTH);
        batcher.shutdown();
        let err = batcher.submit(entry, probe(&ds, 0..4)).unwrap_err();
        assert!(matches!(err, ServeError::Unavailable));
    }

    #[test]
    fn take_batch_groups_same_entry_within_budget() {
        let (registry, entry_a, ds) = setup();
        let trainer =
            DecisionTreeTrainer::new(TreeParams { max_depth: 3, ..Default::default() }, 7);
        let entry_b = registry.register(
            "car-b",
            Snapshot::fit(&trainer, &ds, RowGuard::not_null(ds.schema()).unwrap()),
            None,
        );
        let (tx, _rx) = mpsc::channel();
        let mut queue: VecDeque<Job> = VecDeque::new();
        for entry in [&entry_a, &entry_b, &entry_a, &entry_a] {
            queue.push_back(Job {
                rows: probe(&ds, 0..4),
                entry: Arc::clone(entry),
                reply: tx.clone(),
            });
        }
        // Budget admits leader + one follower; the second same-entry
        // follower stays queued, and the other entry's job is untouched.
        let batch = take_batch(&mut queue, 8);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|j| Arc::ptr_eq(&j.entry, &entry_a)));
        assert_eq!(queue.len(), 2);
        assert!(Arc::ptr_eq(&queue[0].entry, &entry_b));
        assert!(Arc::ptr_eq(&queue[1].entry, &entry_a));
    }
}
