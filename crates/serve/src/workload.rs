//! Named deterministic serving workloads.
//!
//! The serve-path bench gates assert that responses coming back over the
//! wire are bit-identical to a direct `predict_rows` call. That only works
//! if the server, the load generator, and the perf probes can each build
//! the *same* fitted model independently — so a workload names a synthetic
//! dataset plus a fixed-seed trainer, and everything downstream (loadgen
//! digests, `BENCH_pr9.json` records, the CI serve-smoke job) keys off the
//! workload name instead of shipping model bytes around.

use frote::FroteConfig;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_data::Dataset;
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::tree::{DecisionTreeTrainer, TreeParams};
use frote_ml::TrainAlgorithm;

use crate::boundary::render_rows;
use crate::registry::FroteRefitter;
use crate::ServeError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrainerKind {
    Forest { n_trees: usize, max_depth: usize },
    Tree { max_depth: usize },
}

/// One named workload: a synthetic dataset recipe plus a fixed-seed
/// trainer. Every component that names the same workload reconstructs a
/// bit-identical model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    name: &'static str,
    kind: DatasetKind,
    rows: usize,
    trainer: TrainerKind,
    seed: u64,
}

/// The workload catalog. Sizes are serving-scale on purpose: a server
/// start (or a publish) trains in well under a second, so CI smoke jobs
/// and perf probes stay fast.
const CATALOG: &[Workload] = &[
    Workload {
        name: "wine-rf",
        kind: DatasetKind::WineQuality,
        rows: 400,
        trainer: TrainerKind::Forest { n_trees: 12, max_depth: 4 },
        seed: 42,
    },
    Workload {
        name: "car-rf",
        kind: DatasetKind::Car,
        rows: 400,
        trainer: TrainerKind::Forest { n_trees: 12, max_depth: 4 },
        seed: 42,
    },
    Workload {
        name: "car-tree",
        kind: DatasetKind::Car,
        rows: 400,
        trainer: TrainerKind::Tree { max_depth: 5 },
        seed: 42,
    },
];

/// Names of every cataloged workload, in catalog order.
pub fn workload_names() -> Vec<&'static str> {
    CATALOG.iter().map(|w| w.name).collect()
}

/// Looks a workload up by name.
///
/// # Errors
///
/// [`ServeError::UnknownModel`] naming the unknown workload.
pub fn by_name(name: &str) -> Result<Workload, ServeError> {
    CATALOG
        .iter()
        .find(|w| w.name == name)
        .copied()
        .ok_or_else(|| ServeError::UnknownModel { name: name.to_string() })
}

impl Workload {
    /// The workload's catalog name (also its registry model name).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Regenerates the workload's training dataset (deterministic).
    pub fn dataset(&self) -> Dataset {
        self.kind.generate(&SynthConfig { n_rows: self.rows, ..Default::default() })
    }

    /// Builds the workload's fixed-seed trainer.
    pub fn trainer(&self) -> Box<dyn TrainAlgorithm> {
        match self.trainer {
            TrainerKind::Forest { n_trees, max_depth } => Box::new(RandomForestTrainer::new(
                ForestParams { n_trees, tree: TreeParams { max_depth, ..Default::default() } },
                self.seed,
            )),
            TrainerKind::Tree { max_depth } => Box::new(DecisionTreeTrainer::new(
                TreeParams { max_depth, ..Default::default() },
                self.seed,
            )),
        }
    }

    /// A service-friendly FROTE configuration: a publish is one expert
    /// edit, not an offline run, so the iteration budget is tiny.
    pub fn frote_config(&self) -> FroteConfig {
        FroteConfig { iteration_limit: 2, instances_per_iteration: Some(25), ..Default::default() }
    }

    /// Builds the standard refitter for this workload (dataset + trainer +
    /// empty rule set), ready to hand to the registry.
    pub fn refitter(&self, range_guard: bool) -> FroteRefitter {
        FroteRefitter::new(
            self.dataset(),
            self.trainer(),
            self.frote_config(),
            range_guard,
            self.seed,
        )
    }

    /// A deterministic probe body: `count` training rows starting at
    /// `start` (wrapping), rendered in the wire row format. Loadgen and
    /// the perf probes use this so request payloads are reproducible.
    pub fn probe_body(&self, ds: &Dataset, start: usize, count: usize) -> String {
        let indices: Vec<usize> = (0..count).map(|k| (start + k) % ds.n_rows()).collect();
        render_rows(ds, &indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup_and_unknown_name() {
        assert_eq!(by_name("wine-rf").unwrap().name(), "wine-rf");
        assert!(matches!(by_name("nope"), Err(ServeError::UnknownModel { .. })));
        assert_eq!(workload_names().len(), CATALOG.len());
    }

    #[test]
    fn dataset_and_trainer_are_deterministic() {
        let w = by_name("car-tree").unwrap();
        let a = w.dataset();
        let b = w.dataset();
        assert_eq!(a.n_rows(), b.n_rows());
        let model_a = w.trainer().train(&a);
        let model_b = w.trainer().train(&b);
        assert_eq!(model_a.predict_dataset(&a), model_b.predict_dataset(&b));
    }

    #[test]
    fn probe_body_wraps_and_parses() {
        let w = by_name("wine-rf").unwrap();
        let ds = w.dataset();
        let body = w.probe_body(&ds, ds.n_rows() - 2, 4);
        let parsed = crate::boundary::parse_rows(&ds.schema_handle(), &body).unwrap();
        assert_eq!(parsed.n_rows(), 4);
        assert_eq!(parsed.cell(2, 0), ds.cell(0, 0), "wrapped back to row 0");
    }
}
