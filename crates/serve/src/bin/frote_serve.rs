//! `frote-serve`: the long-running serving binary.
//!
//! ```text
//! frote-serve [--port N] [--workload NAME]... [--max-batch ROWS]
//!             [--threads N] [--range-guard] [--metrics-out PATH]
//!             [--stdin-watch] [--workers N] [--backlog N]
//!             [--queue-depth N] [--read-timeout-ms N] [--write-timeout-ms N]
//! ```
//!
//! Registers one model per `--workload` (default: `wine-rf`), prints
//! `listening on 127.0.0.1:<port>` once the socket is bound (the CI smoke
//! job scrapes this line for the ephemeral port), and serves until
//! `POST /admin/shutdown` — or, with `--stdin-watch`, until stdin reaches
//! EOF, the std-only stand-in for signal handling: the driver holds a pipe
//! open and closes it to stop the server cleanly.
//!
//! Metrics are always enabled in this binary; `--metrics-out PATH` writes
//! the final `frote-obs` snapshot as JSON at shutdown.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use frote_serve::workload::by_name;
use frote_serve::{ModelRegistry, ServeConfig, Server};

struct Options {
    port: u16,
    workloads: Vec<String>,
    max_batch: usize,
    threads: Option<usize>,
    range_guard: bool,
    metrics_out: Option<String>,
    stdin_watch: bool,
    workers: usize,
    backlog: usize,
    queue_depth: usize,
    read_timeout: Duration,
    write_timeout: Duration,
}

fn usage() -> ! {
    eprintln!(
        "usage: frote-serve [--port N] [--workload NAME]... [--max-batch ROWS] \
         [--threads N] [--range-guard] [--metrics-out PATH] [--stdin-watch] \
         [--workers N] [--backlog N] [--queue-depth N] \
         [--read-timeout-ms N] [--write-timeout-ms N]"
    );
    eprintln!("workloads: {}", frote_serve::workload::workload_names().join(", "));
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut opts = Options {
        port: 0,
        workloads: Vec::new(),
        max_batch: frote_serve::batch::DEFAULT_MAX_BATCH_ROWS,
        threads: None,
        range_guard: false,
        metrics_out: None,
        stdin_watch: false,
        workers: frote_serve::server::DEFAULT_WORKERS,
        backlog: frote_serve::server::DEFAULT_CONN_BACKLOG,
        queue_depth: frote_serve::batch::DEFAULT_MAX_QUEUE_DEPTH,
        read_timeout: frote_serve::server::DEFAULT_CONN_TIMEOUT,
        write_timeout: frote_serve::server::DEFAULT_CONN_TIMEOUT,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--port" => opts.port = value("--port").parse().unwrap_or_else(|_| usage()),
            "--workload" => opts.workloads.push(value("--workload")),
            "--max-batch" => {
                opts.max_batch = value("--max-batch").parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                opts.threads = Some(value("--threads").parse().unwrap_or_else(|_| usage()));
            }
            "--range-guard" => opts.range_guard = true,
            "--workers" => opts.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--backlog" => opts.backlog = value("--backlog").parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => {
                opts.queue_depth = value("--queue-depth").parse().unwrap_or_else(|_| usage());
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms").parse().unwrap_or_else(|_| usage());
                opts.read_timeout = Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms").parse().unwrap_or_else(|_| usage());
                opts.write_timeout = Duration::from_millis(ms);
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--stdin-watch" => opts.stdin_watch = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if opts.workloads.is_empty() {
        opts.workloads.push("wine-rf".to_string());
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_options();
    if let Some(n) = opts.threads {
        frote_par::set_threads(n);
    }
    frote_obs::set_metrics_enabled(true);

    // Fail fast on a malformed FROTE_FAULTS spec: a chaos run with a typo'd
    // spec silently testing nothing is worse than a refused start.
    if let Ok(spec) = std::env::var("FROTE_FAULTS") {
        if let Err(e) = frote_faults::set_spec(Some(&spec)) {
            eprintln!("bad FROTE_FAULTS spec: {e}");
            return ExitCode::from(2);
        }
        if frote_faults::armed() {
            eprintln!("fault injection armed: {spec}");
        }
    }

    let registry = Arc::new(ModelRegistry::new());
    for name in &opts.workloads {
        let workload = match by_name(name) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let refitter = workload.refitter(opts.range_guard);
        let first = match refitter.initial_snapshot() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fitting {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        registry.register(workload.name(), first, Some(Box::new(refitter)));
        eprintln!("registered {name}");
    }

    let config = ServeConfig {
        addr: format!("127.0.0.1:{}", opts.port),
        max_batch_rows: opts.max_batch,
        workers: opts.workers,
        conn_backlog: opts.backlog,
        max_queue_depth: opts.queue_depth,
        read_timeout: opts.read_timeout,
        write_timeout: opts.write_timeout,
    };
    let server = match Server::bind(&config, registry) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };

    // The CI smoke job scrapes this exact line for the ephemeral port.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if opts.stdin_watch {
        let server = Arc::clone(&server);
        std::thread::Builder::new()
            .name("frote-serve-stdin".to_string())
            .spawn(move || {
                // Drain stdin to EOF; the driver closing its end of the
                // pipe is the graceful-stop request.
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin().lock();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                eprintln!("stdin closed; shutting down");
                server.trigger_shutdown();
            })
            .expect("spawn stdin watcher");
    }

    server.run();

    if let Some(path) = &opts.metrics_out {
        if let Err(e) = std::fs::write(path, frote_obs::snapshot_json()) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics written to {path}");
    }
    eprintln!("shutdown complete");
    ExitCode::SUCCESS
}
