//! A blocking keep-alive client for the serving plane.
//!
//! Shares the vendored HTTP/1.1 framing with the server, so the load
//! generator, the perf probes, the integration tests, and the CI smoke
//! job all speak the wire protocol through one implementation.
//!
//! [`Backoff`] + [`Client::request_with_retry`] implement the
//! load-shedding contract from the other side: a `503` (admission
//! control), `408` (deadline), or dropped connection is retried after a
//! capped exponential delay with **deterministic** jitter (seeded
//! [`frote_par::SeedSplit`], so chaos tests replay bit-identically), and
//! a server-sent `Retry-After` hint is honored up to the cap.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use frote_par::SeedSplit;

use crate::http::{read_response, write_request, Response};
use crate::ServeError;

/// Capped exponential backoff with deterministic, seeded jitter.
///
/// Delay for attempt `n` is drawn uniformly (by the seeded stream) from
/// `[half, full]` where `full = min(base << n, cap)` — "equal jitter", so
/// retries decorrelate without ever collapsing to zero wait.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    jitter: SeedSplit,
}

impl Backoff {
    /// A backoff starting at `base` and saturating at `cap`; `seed`
    /// determines the jitter stream.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            cap,
            attempt: 0,
            jitter: SeedSplit::new(seed),
        }
    }

    /// The delay before the next retry. `retry_after` (the server's hint)
    /// raises the floor, capped at `cap` so a polite server cannot stall
    /// the client unboundedly.
    pub fn next_delay(&mut self, retry_after: Option<Duration>) -> Duration {
        let shift = self.attempt.min(16);
        let full = self.base.saturating_mul(1 << shift).min(self.cap);
        let half = full / 2;
        let span_ms = (full - half).as_millis() as u64;
        let jitter_ms = match span_ms {
            0 => 0,
            s => self.jitter.seed(u64::from(self.attempt)) % (s + 1),
        };
        self.attempt += 1;
        let delay = half + Duration::from_millis(jitter_ms);
        match retry_after {
            Some(hint) => delay.max(hint.min(self.cap)),
            None => delay,
        }
    }

    /// Resets the attempt counter (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// One keep-alive connection to a serving-plane server.
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7070`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { addr: addr.to_string(), reader, writer })
    }

    /// Drops the current connection and dials the same address again —
    /// the retry path after the server shed or dropped us.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the reconnect fails.
    pub fn reconnect(&mut self) -> Result<(), ServeError> {
        *self = Client::connect(&self.addr)?;
        Ok(())
    }

    /// Connects with a readiness loop: retries connect + `GET /health`
    /// until `wait` elapses. Lets a driver start the server binary and the
    /// client concurrently without racing the bind.
    ///
    /// # Errors
    ///
    /// The last connection/health error once `wait` is exhausted.
    pub fn connect_with_retry(addr: &str, wait: Duration) -> Result<Client, ServeError> {
        let deadline = Instant::now() + wait;
        loop {
            let attempt = Client::connect(addr).and_then(|mut c| {
                c.health()?;
                Ok(c)
            });
            match attempt {
                Ok(client) => return Ok(client),
                Err(err) if Instant::now() >= deadline => return Err(err),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure, [`ServeError::BadRequest`]
    /// when the peer's framing is malformed.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Response, ServeError> {
        write_request(&mut self.writer, method, path, body)?;
        read_response(&mut self.reader)
    }

    /// [`Client::request`] with the retry contract: a `503` (shed), `408`
    /// (deadline), or transport failure is retried up to `max_attempts`
    /// times with `backoff` delays (honoring `Retry-After`), reconnecting
    /// first — the server closes the connection on both shed and deadline
    /// paths. Any other response (including structured `4xx`/`500`) is
    /// returned as-is: those are answers, not congestion.
    ///
    /// # Errors
    ///
    /// The last transport error when every attempt failed to get *any*
    /// response.
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        max_attempts: usize,
        backoff: &mut Backoff,
    ) -> Result<Response, ServeError> {
        let mut last: Option<Result<Response, ServeError>> = None;
        for _ in 0..max_attempts.max(1) {
            match self.request(method, path, body) {
                Ok(resp) if resp.status == 503 || resp.status == 408 => {
                    let hint = resp.retry_after.map(Duration::from_secs);
                    last = Some(Ok(resp));
                    std::thread::sleep(backoff.next_delay(hint));
                    let _ = self.reconnect();
                }
                Ok(resp) => {
                    backoff.reset();
                    return Ok(resp);
                }
                Err(err @ (ServeError::Io { .. } | ServeError::Timeout)) => {
                    last = Some(Err(err));
                    std::thread::sleep(backoff.next_delay(None));
                    let _ = self.reconnect();
                }
                Err(err) => return Err(err),
            }
        }
        last.expect("max_attempts clamped to >= 1")
    }

    fn expect_200(&mut self, method: &str, path: &str, body: &str) -> Result<String, ServeError> {
        let resp = self.request(method, path, body)?;
        if resp.status != 200 {
            return Err(ServeError::BadRequest {
                detail: format!("{method} {path} -> {}: {}", resp.status, resp.body.trim_end()),
            });
        }
        Ok(resp.body)
    }

    /// `GET /health`.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-200 status.
    pub fn health(&mut self) -> Result<(), ServeError> {
        self.expect_200("GET", "/health", "").map(|_| ())
    }

    /// `GET /models` — the raw listing body.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-200 status.
    pub fn models(&mut self) -> Result<String, ServeError> {
        self.expect_200("GET", "/models", "")
    }

    /// `GET /metrics` — the `frote-obs` snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Transport errors or a non-200 status.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        self.expect_200("GET", "/metrics", "")
    }

    /// `POST /score/<model>` with rows in the wire format; returns the
    /// generation the batch was scored against and one class name per row.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::BadRequest`] carrying the
    /// server's structured message on any non-200 (use
    /// [`Client::request`] for status-level assertions).
    pub fn score(&mut self, model: &str, body: &str) -> Result<(u64, Vec<String>), ServeError> {
        let body = self.expect_200("POST", &format!("/score/{model}"), body)?;
        parse_score_body(&body)
    }

    /// `POST /publish/<model>`; `rule` is an optional feedback rule.
    /// Returns the newly published generation.
    ///
    /// # Errors
    ///
    /// As [`Client::score`].
    pub fn publish(&mut self, model: &str, rule: Option<&str>) -> Result<u64, ServeError> {
        let body = self.expect_200("POST", &format!("/publish/{model}"), rule.unwrap_or(""))?;
        let generation =
            body.trim().strip_prefix("generation:").and_then(|g| g.parse().ok()).ok_or_else(
                || ServeError::BadRequest {
                    detail: format!("malformed publish response {body:?}"),
                },
            )?;
        Ok(generation)
    }

    /// `POST /admin/shutdown` — asks the server to stop gracefully.
    ///
    /// # Errors
    ///
    /// As [`Client::health`].
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.expect_200("POST", "/admin/shutdown", "").map(|_| ())
    }
}

/// Parses a score response body: `generation:<g>` then one class name per
/// line.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on a malformed body.
pub fn parse_score_body(body: &str) -> Result<(u64, Vec<String>), ServeError> {
    let mut lines = body.lines();
    let generation = lines
        .next()
        .and_then(|l| l.strip_prefix("generation:"))
        .and_then(|g| g.parse().ok())
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!("malformed score response {body:?}"),
        })?;
    Ok((generation, lines.map(str::to_string).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_score_body() {
        let (generation, labels) = parse_score_body("generation:3\nacc\nunacc\n").unwrap();
        assert_eq!(generation, 3);
        assert_eq!(labels, vec!["acc".to_string(), "unacc".to_string()]);
    }

    #[test]
    fn malformed_score_body_is_error() {
        assert!(parse_score_body("nope\n").is_err());
        assert!(parse_score_body("generation:x\n").is_err());
    }
}
