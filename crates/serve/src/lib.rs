//! The serving plane: FROTE-as-a-service.
//!
//! Every crate below this one is batch-first and allocation-free per row,
//! but nothing *served* it. This crate adds the deployment boundary the
//! MLSys framing calls the hard part of ML systems:
//!
//! - [`http`] — a minimal, vendored HTTP/1.1 line protocol on std-only
//!   TCP (the offline-deps rule bans real HTTP stacks);
//! - [`registry`] — a model registry holding fitted models plus their
//!   [`frote_data::Encoder`] / [`frote_data::Binner`], with **lock-free
//!   snapshot swaps**: publishing a retrained model is one atomic pointer
//!   store, and in-flight readers are never blocked;
//! - [`boundary`] — request validation with the PR 6 rule engine: rows are
//!   parsed against the model's schema and swept through a compiled
//!   not-null/range guard clause (`CompiledClause`, the `try_*` path), so
//!   malformed input surfaces a structured error before any scan — never a
//!   worker panic;
//! - [`batch`] — request micro-batching: concurrent score requests are
//!   aggregated into one [`frote_ml::Classifier::predict_rows`] call over
//!   the `frote-par` pool, all rows of a batch scored against exactly one
//!   published snapshot;
//! - [`server`] — the accept loop, routing, and graceful shutdown;
//! - [`client`] — small blocking client helpers shared by `loadgen`,
//!   `perfsmoke`, and the integration tests;
//! - [`workload`] — named deterministic dataset+trainer combos so the
//!   server and the load generator can independently construct
//!   bit-identical models and assert response digests.
//!
//! # Observability
//!
//! The plane inherits `frote-obs` wholesale: request/row/reject counters
//! (thread-invariant — `benchdiff` gates them), batch counters and
//! queue-depth gauges (thread-variant: micro-batch composition depends on
//! arrival timing), and latency histograms. `GET /metrics` returns the
//! JSON snapshot; the server bin's `--metrics-out` writes one at shutdown.

#![warn(missing_docs)]

pub mod batch;
pub mod boundary;
pub mod client;
pub mod http;
pub mod registry;
pub mod server;
pub mod workload;

use std::fmt;

pub use batch::{Batcher, ScoreResponse};
pub use boundary::{parse_rows, render_rows, RowGuard};
pub use client::{Backoff, Client};
pub use registry::{FroteRefitter, ModelEntry, ModelRegistry, Refitter, Snapshot};
pub use server::{ServeConfig, Server};
pub use workload::Workload;

/// Errors surfaced by the serving plane. Every variant renders as a
/// single-line, machine-greppable message — the HTTP layer sends it as the
/// body of a `400`/`404`/`503` instead of panicking the worker.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request line / headers / framing were not understood.
    BadRequest {
        /// What was malformed.
        detail: String,
    },
    /// The named model is not registered.
    UnknownModel {
        /// The requested model name.
        name: String,
    },
    /// One request row failed schema-level parsing (wrong arity, unknown
    /// category, unparsable numeric cell).
    Row {
        /// 1-based row number within the request body.
        line: usize,
        /// What was malformed.
        detail: String,
    },
    /// Rows parsed but were rejected by the compiled boundary guard
    /// (NaN cells, out-of-range values).
    RowsRejected {
        /// 0-based indices of the offending rows within the request.
        rows: Vec<usize>,
        /// Display form of the guard constraint that rejected them.
        guard: String,
    },
    /// Rule validation/compilation failed (the `try_*` ingestion path).
    Rule(frote_rules::RuleError),
    /// The server is shutting down and no longer accepts work.
    Unavailable,
    /// Admission control shed this request: the batcher queue (or the
    /// connection backlog) was at capacity. Maps to `503` with a
    /// `Retry-After` header — the client backoff contract.
    Overloaded,
    /// A per-connection read/write deadline expired (slow-client
    /// protection). Maps to `408`.
    Timeout,
    /// The request's header section exceeded the framing cap before a
    /// blank line. Maps to `431`.
    HeadersTooLarge,
    /// An injected failpoint fired (`FROTE_FAULTS`); chaos testing only.
    /// Maps to `500` — a structured error, never a dead worker.
    Fault {
        /// The failpoint site that fired.
        site: String,
    },
    /// Transport-level failure talking to a peer.
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::UnknownModel { name } => write!(f, "unknown model: {name}"),
            ServeError::Row { line, detail } => write!(f, "row {line}: {detail}"),
            ServeError::RowsRejected { rows, guard } => {
                write!(f, "rows rejected by boundary guard [{guard}]: {rows:?}")
            }
            ServeError::Rule(e) => write!(f, "rule error: {e}"),
            ServeError::Unavailable => write!(f, "server shutting down"),
            ServeError::Overloaded => write!(f, "overloaded: request shed by admission control"),
            ServeError::Timeout => write!(f, "timeout: connection deadline expired"),
            ServeError::HeadersTooLarge => write!(f, "request header section too large"),
            ServeError::Fault { site } => write!(f, "injected fault at {site}"),
            ServeError::Io { detail } => write!(f, "io error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<frote_rules::RuleError> for ServeError {
    fn from(e: frote_rules::RuleError) -> Self {
        ServeError::Rule(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        // A socket deadline (`set_read_timeout`/`set_write_timeout`)
        // surfaces as `WouldBlock` (unix) or `TimedOut` (windows); either
        // way it is the structured-408 case, not a generic transport error.
        if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
            return ServeError::Timeout;
        }
        ServeError::Io { detail: e.to_string() }
    }
}

impl From<frote_faults::InjectedFault> for ServeError {
    fn from(f: frote_faults::InjectedFault) -> Self {
        ServeError::Fault { site: f.site }
    }
}
