//! The model registry: named models with lock-free snapshot swaps.
//!
//! A [`ModelEntry`] holds the *current* [`Snapshot`] as one raw pointer in
//! an `AtomicPtr` — the "Arc generation pointer" of the ROADMAP item, with
//! the reclamation problem solved by construction instead of by protocol:
//! every published snapshot is boxed into an append-only history owned by
//! the entry, so the pointee of `current` is always alive for as long as
//! the entry is, and readers can dereference it with a plain `Acquire`
//! load. A publish is therefore one atomic store and a reader is one
//! atomic load — **wait-free on both sides**, no lock, no epoch, no
//! deferred-free list. The cost is one retained snapshot per publish,
//! freed when the entry drops; FROTE edits are human-scale rare next to
//! score traffic, so the bound is the number of expert edits, not the
//! request rate.
//!
//! The swap guarantee the integration tests pin: a reader observes either
//! the old snapshot or the new one, never a mix — model, encoder, binner,
//! and guard travel in one `Snapshot`, and the batcher resolves
//! [`ModelEntry::current`] exactly once per micro-batch.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use frote::{Frote, FroteConfig};
use frote_data::{Binner, Dataset, Encoder, Schema};
use frote_ml::{Classifier, TrainAlgorithm};
use frote_obs::Counter;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::boundary::RowGuard;
use crate::ServeError;

/// Published model generations (one per snapshot swap) — deterministic for
/// a fixed request sequence, so `benchdiff` gates it.
static SWAPS: Counter = Counter::new("serve.swaps");

/// Retrains that errored or panicked and were rolled back: the previous
/// snapshot generation kept serving. Thread-variant — chaos specs and
/// retried publishes make the count timing-dependent.
static PUBLISH_FAILURES: Counter = Counter::thread_variant("serve.publish_failures");

/// Bin budget for the registry's quantized view of the training data.
pub const SERVE_BINS: usize = 256;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything a scorer needs, versioned as one immutable unit: the fitted
/// model, its [`Encoder`] / [`Binner`], the schema, and the boundary guard.
pub struct Snapshot {
    generation: u64,
    model: Box<dyn Classifier>,
    schema: Arc<Schema>,
    encoder: Encoder,
    binner: Binner,
    guard: RowGuard,
    /// Rows of the dataset the model was fitted on (surfaced by `/models`).
    fit_rows: usize,
}

impl Snapshot {
    /// Fits a snapshot: trains `trainer` on `ds` and captures the encoder,
    /// binner, and `guard` alongside the model. The generation is assigned
    /// at publish time.
    pub fn fit(trainer: &dyn TrainAlgorithm, ds: &Dataset, guard: RowGuard) -> Snapshot {
        Snapshot {
            generation: 0,
            model: trainer.train(ds),
            schema: ds.schema_handle(),
            encoder: Encoder::fit(ds),
            binner: Binner::fit(ds, SERVE_BINS),
            guard,
            fit_rows: ds.n_rows(),
        }
    }

    /// The generation number assigned when this snapshot was published
    /// (1-based; 0 means not yet published).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fitted model.
    pub fn model(&self) -> &dyn Classifier {
        &*self.model
    }

    /// The schema requests are validated against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The encoder fitted alongside the model.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The quantizer fitted alongside the model.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// The boundary guard requests are swept through.
    pub fn guard(&self) -> &RowGuard {
        &self.guard
    }

    /// Rows of the training dataset behind this snapshot.
    pub fn fit_rows(&self) -> usize {
        self.fit_rows
    }
}

/// Retrains a model for the `POST /publish/<model>` path. Implementations
/// own the training state (dataset, rule set, trainer); the registry only
/// ever sees finished [`Snapshot`]s.
pub trait Refitter: Send + Sync {
    /// Produces a fresh snapshot; `rule` is an optional feedback rule in
    /// the parser's syntax, ingested through the validated `try_*` path
    /// and folded into a FROTE edit before retraining.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rule`] when `rule` fails parse/validation/conflict
    /// checks (the request is rejected; the serving state is unchanged).
    fn refit(&self, rule: Option<&str>) -> Result<Snapshot, ServeError>;
}

/// One named model: the lock-free current pointer plus the append-only
/// snapshot history that keeps every published generation alive.
pub struct ModelEntry {
    name: String,
    current: AtomicPtr<Snapshot>,
    // The boxes are load-bearing: `current` points into them, and a
    // `Vec<Snapshot>` would move every pointee when it reallocates.
    #[allow(clippy::vec_box)]
    history: Mutex<Vec<Box<Snapshot>>>,
    refitter: Option<Box<dyn Refitter>>,
}

impl ModelEntry {
    fn new(name: String, first: Snapshot, refitter: Option<Box<dyn Refitter>>) -> ModelEntry {
        let entry = ModelEntry {
            name,
            current: AtomicPtr::new(std::ptr::null_mut()),
            history: Mutex::new(Vec::new()),
            refitter,
        };
        entry.publish(first);
        entry
    }

    /// The model's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current snapshot — one `Acquire` load, wait-free, never blocked
    /// by a concurrent publish. The borrow is tied to `&self`; the pointee
    /// lives in the entry's history until the entry itself drops.
    pub fn current(&self) -> &Snapshot {
        let p = self.current.load(Ordering::Acquire);
        // SAFETY: `p` is never null after construction (the constructor
        // publishes the first snapshot before the entry is shared) and
        // always points into a `Box<Snapshot>` held by `self.history`,
        // which is append-only: boxes are dropped only when `self` drops,
        // and the returned lifetime is bounded by `&self`. The `Release`
        // store in `publish` pairs with this `Acquire` load, so the
        // snapshot's fields are fully visible.
        unsafe { &*p }
    }

    /// Publishes `snapshot` as the next generation and returns its number.
    /// In-flight readers keep scoring against the snapshot they already
    /// resolved; new resolutions see the new generation immediately.
    pub fn publish(&self, mut snapshot: Snapshot) -> u64 {
        let mut history = lock(&self.history);
        let generation = history.len() as u64 + 1;
        snapshot.generation = generation;
        let boxed = Box::new(snapshot);
        let ptr: *mut Snapshot = &*boxed as *const Snapshot as *mut Snapshot;
        // Keep the box alive *before* exposing the pointer: a reader that
        // wins the race right after the store must find a live pointee.
        history.push(boxed);
        self.current.store(ptr, Ordering::Release);
        SWAPS.inc();
        generation
    }

    /// Number of generations published so far.
    pub fn generations(&self) -> u64 {
        lock(&self.history).len() as u64
    }

    /// Retrains through the entry's [`Refitter`] and publishes the result.
    ///
    /// Transactional: a refit that errors *or panics* publishes nothing —
    /// the current generation keeps serving, the failure is counted in
    /// `serve.publish_failures`, and the caller gets a structured error
    /// instead of a dead worker.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unavailable`] when the entry was registered without a
    /// refitter; refit errors pass through; a refit panic surfaces as
    /// [`ServeError::Fault`] (injected) or [`ServeError::Io`] (anything
    /// else).
    pub fn republish(&self, rule: Option<&str>) -> Result<u64, ServeError> {
        let refitter = self.refitter.as_ref().ok_or(ServeError::Unavailable)?;
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| refitter.refit(rule)));
        let snapshot = match outcome {
            Ok(Ok(snapshot)) => snapshot,
            Ok(Err(err)) => {
                PUBLISH_FAILURES.inc();
                return Err(err);
            }
            Err(payload) => {
                PUBLISH_FAILURES.inc();
                let err = match frote_faults::fault_from_panic(&*payload) {
                    Some(fault) => ServeError::Fault { site: fault.site.clone() },
                    None => ServeError::Io { detail: "panic during retrain".to_string() },
                };
                return Err(err);
            }
        };
        Ok(self.publish(snapshot))
    }
}

/// The registry: model name → [`ModelEntry`].
#[derive(Default)]
pub struct ModelRegistry {
    entries: Mutex<Vec<Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers a model under `name` with its first snapshot (published
    /// as generation 1) and an optional refitter for `POST /publish`.
    /// Re-registering a name replaces the old entry for *new* lookups;
    /// connections holding the old `Arc` keep a consistent view.
    pub fn register(
        &self,
        name: &str,
        first: Snapshot,
        refitter: Option<Box<dyn Refitter>>,
    ) -> Arc<ModelEntry> {
        let entry = Arc::new(ModelEntry::new(name.to_string(), first, refitter));
        let mut entries = lock(&self.entries);
        entries.retain(|e| e.name != name);
        entries.push(Arc::clone(&entry));
        entry
    }

    /// Looks up a model by name.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `name` is not registered.
    pub fn get(&self, name: &str) -> Result<Arc<ModelEntry>, ServeError> {
        lock(&self.entries)
            .iter()
            .find(|e| e.name == name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel { name: name.to_string() })
    }

    /// `(name, current generation, fit rows)` for every registered model,
    /// in registration order — the `GET /models` payload.
    pub fn list(&self) -> Vec<(String, u64, usize)> {
        lock(&self.entries)
            .iter()
            .map(|e| {
                let snap = e.current();
                (e.name.clone(), snap.generation(), snap.fit_rows())
            })
            .collect()
    }
}

/// The standard [`Refitter`]: owns the serving dataset, trainer, and rule
/// set; a publish with a rule runs one FROTE edit (ingesting the rule via
/// the validated [`FeedbackRuleSet::try_push`] path), keeps the augmented
/// dataset, and retrains; a publish without a rule retrains on the current
/// dataset as-is. Deterministic: the RNG stream is seeded per edit count,
/// so a fixed request sequence reproduces bit-identical generations.
pub struct FroteRefitter {
    state: Mutex<RefitState>,
    trainer: Box<dyn TrainAlgorithm>,
    config: FroteConfig,
    range_guard: bool,
    seed: u64,
}

struct RefitState {
    ds: Dataset,
    frs: FeedbackRuleSet,
    edits: u64,
}

impl FroteRefitter {
    /// Builds a refitter over `ds` with an empty rule set.
    ///
    /// `config` should carry a service-friendly iteration budget (the
    /// server default is single-digit iterations — a publish is an edit,
    /// not a full offline run). `range_guard` selects
    /// [`RowGuard::in_range`] over [`RowGuard::not_null`] for snapshots.
    pub fn new(
        ds: Dataset,
        trainer: Box<dyn TrainAlgorithm>,
        config: FroteConfig,
        range_guard: bool,
        seed: u64,
    ) -> FroteRefitter {
        FroteRefitter {
            state: Mutex::new(RefitState { ds, frs: FeedbackRuleSet::empty(), edits: 0 }),
            trainer,
            config,
            range_guard,
            seed,
        }
    }

    fn guard(&self, ds: &Dataset) -> Result<RowGuard, ServeError> {
        if self.range_guard {
            RowGuard::in_range(ds.schema(), ds)
        } else {
            RowGuard::not_null(ds.schema())
        }
    }

    /// Fits the initial (pre-publish) snapshot on the refitter's dataset.
    ///
    /// # Errors
    ///
    /// Guard compilation errors (unreachable for well-formed schemas).
    pub fn initial_snapshot(&self) -> Result<Snapshot, ServeError> {
        let state = lock(&self.state);
        Ok(Snapshot::fit(&*self.trainer, &state.ds, self.guard(&state.ds)?))
    }
}

impl Refitter for FroteRefitter {
    fn refit(&self, rule: Option<&str>) -> Result<Snapshot, ServeError> {
        let mut state = lock(&self.state);
        frote_faults::point("serve.publish.retrain")?;
        if let Some(text) = rule {
            let schema = state.ds.schema_handle();
            let parsed = parse_rule(text, &schema)?;
            // Clone-commit: the rule is validated into a *copy* of the rule
            // set and the FROTE run reads the current dataset immutably, so
            // an error or panic anywhere below leaves the serving state
            // exactly as it was — republish's rollback guarantee.
            let mut frs = state.frs.clone();
            frs.try_push(parsed, &schema)?;
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(state.edits));
            let out = Frote::new(self.config)
                .run(&state.ds, &*self.trainer, &frs, &mut rng)
                .map_err(|e| ServeError::BadRequest { detail: format!("frote edit: {e}") })?;
            state.ds = out.dataset;
            state.frs = frs;
        }
        let snapshot = Snapshot::fit(&*self.trainer, &state.ds, self.guard(&state.ds)?);
        // Commit the edit counter last: a failed refit must not advance the
        // per-edit RNG stream, or the retry would diverge from the
        // fault-free twin.
        state.edits += 1;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_ml::tree::{DecisionTreeTrainer, TreeParams};

    fn tiny_ds() -> Dataset {
        DatasetKind::Car.generate(&SynthConfig { n_rows: 120, ..Default::default() })
    }

    fn trainer() -> DecisionTreeTrainer {
        DecisionTreeTrainer::new(TreeParams { max_depth: 4, ..Default::default() }, 7)
    }

    fn snapshot(ds: &Dataset) -> Snapshot {
        Snapshot::fit(&trainer(), ds, RowGuard::not_null(ds.schema()).unwrap())
    }

    #[test]
    fn register_publish_and_lookup() {
        let ds = tiny_ds();
        let registry = ModelRegistry::new();
        let entry = registry.register("car", snapshot(&ds), None);
        assert_eq!(entry.current().generation(), 1);
        assert_eq!(registry.get("car").unwrap().current().generation(), 1);
        assert!(registry.get("nope").is_err());

        let g = entry.publish(snapshot(&ds));
        assert_eq!(g, 2);
        assert_eq!(entry.current().generation(), 2);
        assert_eq!(entry.generations(), 2);
        assert_eq!(registry.list(), vec![("car".to_string(), 2, ds.n_rows())]);
    }

    #[test]
    fn current_is_stable_across_a_publish() {
        let ds = tiny_ds();
        let registry = ModelRegistry::new();
        let entry = registry.register("car", snapshot(&ds), None);
        let before = entry.current();
        let g1 = before.generation();
        entry.publish(snapshot(&ds));
        // The old borrow still reads the old generation: snapshots are
        // immutable and stay alive in the history.
        assert_eq!(before.generation(), g1);
        assert_eq!(entry.current().generation(), g1 + 1);
    }

    #[test]
    fn republish_without_refitter_is_unavailable() {
        let ds = tiny_ds();
        let registry = ModelRegistry::new();
        let entry = registry.register("car", snapshot(&ds), None);
        assert!(matches!(entry.republish(None), Err(ServeError::Unavailable)));
    }

    #[test]
    fn republish_rolls_back_on_injected_error_and_panic() {
        let ds = tiny_ds();
        let refitter = FroteRefitter::new(
            ds,
            Box::new(trainer()),
            FroteConfig {
                iteration_limit: 1,
                instances_per_iteration: Some(5),
                ..Default::default()
            },
            false,
            7,
        );
        let registry = ModelRegistry::new();
        let first = refitter.initial_snapshot().unwrap();
        let entry = registry.register("car", first, Some(Box::new(refitter)));

        frote_faults::test_support::with_spec(Some("serve.publish.retrain:err:1000:1"), || {
            let err = entry.republish(None).unwrap_err();
            assert!(matches!(err, ServeError::Fault { .. }), "got {err:?}");
            assert_eq!(entry.current().generation(), 1, "failed retrain publishes nothing");
        });
        frote_faults::test_support::with_spec(Some("serve.publish.retrain:panic:1000:1"), || {
            let err = entry.republish(None).unwrap_err();
            assert!(
                matches!(err, ServeError::Fault { .. }),
                "a retrain panic must surface structured, got {err:?}"
            );
            assert_eq!(entry.current().generation(), 1, "panicked retrain publishes nothing");
        });
        // Faults cleared: the rolled-back entry publishes normally.
        assert_eq!(entry.republish(None).unwrap(), 2);
        assert_eq!(entry.current().generation(), 2);
    }

    #[test]
    fn frote_refitter_rejects_malformed_rule_and_keeps_state() {
        let ds = tiny_ds();
        let refitter = FroteRefitter::new(
            ds,
            Box::new(trainer()),
            FroteConfig {
                iteration_limit: 1,
                instances_per_iteration: Some(5),
                ..Default::default()
            },
            false,
            7,
        );
        let err = match refitter.refit(Some("no_such_feature = low => acc")) {
            Err(e) => e,
            Ok(_) => panic!("expected a rule error"),
        };
        assert!(matches!(err, ServeError::Rule(_)), "got {err:?}");
        // A good refit still works afterwards.
        let snap = refitter.refit(None).unwrap();
        assert_eq!(snap.generation(), 0, "generation assigned at publish");
    }
}
