//! The serving loop: a std-only TCP accept loop over the vendored
//! HTTP/1.1 framing, routing requests into the registry and the batcher.
//!
//! Routes:
//!
//! | Route                   | Effect                                          |
//! |-------------------------|-------------------------------------------------|
//! | `GET /health`           | liveness: `ok`                                  |
//! | `GET /models`           | one `name generation fit_rows` line per model   |
//! | `GET /metrics`          | `frote-obs` snapshot as JSON                    |
//! | `POST /score/<model>`   | rows in the body → `generation:<g>` + one class |
//! |                         | name per row, micro-batched                     |
//! | `POST /publish/<model>` | optional feedback rule in the body → FROTE edit |
//! |                         | + retrain + lock-free snapshot swap             |
//! | `POST /admin/shutdown`  | graceful stop (std has no signal handling)      |
//!
//! Score requests are validated at the boundary *before* they reach the
//! batcher: parse errors and guard rejections come back as structured
//! `400`s and never touch a scoring worker. Connections are handled one
//! thread each with keep-alive; idle connections are watched with a short
//! read timeout + `peek` so a shutdown drains them promptly without
//! corrupting in-flight framing.

use std::io::{BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use frote_obs::{Counter, Histogram};

use crate::batch::{Batcher, DEFAULT_MAX_BATCH_ROWS};
use crate::boundary::parse_rows;
use crate::http::{read_request, write_response, Request};
use crate::registry::ModelRegistry;
use crate::ServeError;

/// Connections accepted — arrival patterns vary run to run.
static CONNECTIONS: Counter = Counter::thread_variant("serve.connections");
/// Requests rejected with a structured 4xx before any scoring.
static BAD_REQUESTS: Counter = Counter::new("serve.bad_requests");
/// Score requests whose rows failed the boundary guard sweep.
static VALIDATION_REJECTS: Counter = Counter::new("serve.validation_rejects");
/// Wall-clock of one request: route + validate + (batched) score + write.
static REQUEST_SPAN: Histogram = Histogram::new("serve.request_ns");

/// Poll interval for idle keep-alive connections (bounds shutdown drain).
const IDLE_POLL: Duration = Duration::from_millis(200);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Row budget per micro-batch.
    pub max_batch_rows: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { addr: "127.0.0.1:0".to_string(), max_batch_rows: DEFAULT_MAX_BATCH_ROWS }
    }
}

/// The serving plane: listener + registry + batcher.
pub struct Server {
    registry: Arc<ModelRegistry>,
    batcher: Arc<Batcher>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Binds the listener and starts the batcher. `run` must be called to
    /// begin accepting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails.
    pub fn bind(config: &ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            registry,
            batcher: Arc::new(Batcher::start(config.max_batch_rows)),
            listener,
            local_addr,
            shutdown: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
        })
    }

    /// The bound address (with the OS-assigned port when asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry behind this server.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Requests a graceful stop: flips the flag and self-connects to
    /// unblock the accept loop. Callable from any thread.
    pub fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop; the no-op connection is served an
        // immediate EOF close by a handler checking the flag.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Accepts connections until [`Server::trigger_shutdown`], then drains:
    /// joins every connection handler (idle keep-alive connections notice
    /// within the 200ms idle poll) and shuts the batcher down, answering queued
    /// work first.
    pub fn run(self: &Arc<Self>) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            CONNECTIONS.inc();
            let server = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name("frote-serve-conn".to_string())
                .spawn(move || server.handle_connection(stream))
                .expect("spawn connection handler");
            lock(&self.handlers).push(handle);
        }
        for handle in lock(&self.handlers).drain(..) {
            let _ = handle.join();
        }
        self.batcher.shutdown();
    }

    fn handle_connection(&self, stream: TcpStream) {
        // Without this, Nagle on our side interacts with the peer's
        // delayed ACKs to put a ~40ms floor under every response.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Idle wait via peek: nothing is consumed, so a poll timeout
            // cannot corrupt the framing of a request that arrives later.
            if reader.buffer().is_empty() {
                match reader.get_ref().peek(&mut [0u8; 1]) {
                    Ok(0) => return,
                    Ok(_) => {}
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                        continue;
                    }
                    Err(_) => return,
                }
            }
            let _span = REQUEST_SPAN.span();
            let request = match read_request(&mut reader) {
                Ok(Some(request)) => request,
                Ok(None) => return,
                Err(err) => {
                    BAD_REQUESTS.inc();
                    let _ = write_response(&mut writer, 400, &format!("{err}\n"), false);
                    return;
                }
            };
            let keep_alive = request.keep_alive;
            let (status, body) = self.route(&request);
            if write_response(&mut writer, status, &body, keep_alive).is_err() || !keep_alive {
                return;
            }
        }
    }

    /// Routes one request to `(status, body)`.
    fn route(&self, request: &Request) -> (u16, String) {
        let outcome = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health") => Ok("ok\n".to_string()),
            ("GET", "/models") => Ok(self
                .registry
                .list()
                .into_iter()
                .map(|(name, generation, fit_rows)| format!("{name} {generation} {fit_rows}\n"))
                .collect()),
            ("GET", "/metrics") => Ok(frote_obs::snapshot_json()),
            ("POST", "/admin/shutdown") => {
                self.trigger_shutdown();
                Ok("shutting down\n".to_string())
            }
            ("POST", path) if path.starts_with("/score/") => {
                self.score(&path["/score/".len()..], &request.body)
            }
            ("POST", path) if path.starts_with("/publish/") => {
                self.publish(&path["/publish/".len()..], &request.body)
            }
            (_, path) => Err(ServeError::BadRequest {
                detail: format!("no route for {} {path}", request.method),
            }),
        };
        match outcome {
            Ok(body) => (200, body),
            Err(err) => {
                let status = match &err {
                    ServeError::UnknownModel { .. } => 404,
                    ServeError::Unavailable => 503,
                    ServeError::Io { .. } => 503,
                    ServeError::RowsRejected { .. } => {
                        VALIDATION_REJECTS.inc();
                        400
                    }
                    _ => 400,
                };
                if status == 400 {
                    BAD_REQUESTS.inc();
                }
                (status, format!("{err}\n"))
            }
        }
    }

    fn score(&self, model: &str, body: &str) -> Result<String, ServeError> {
        let entry = self.registry.get(model)?;
        // One snapshot resolve for validation; the batcher resolves its
        // own (possibly newer) snapshot and reports which generation the
        // response came from.
        let (rows, schema) = {
            let snapshot = entry.current();
            let rows = parse_rows(snapshot.schema(), body)?;
            snapshot.guard().check(&rows)?;
            (rows, Arc::clone(snapshot.schema()))
        };
        let response = self.batcher.submit(entry, rows)?;
        let mut out = format!("generation:{}\n", response.generation);
        for &class in &response.predictions {
            out.push_str(schema.class_name(class));
            out.push('\n');
        }
        Ok(out)
    }

    fn publish(&self, model: &str, body: &str) -> Result<String, ServeError> {
        let entry = self.registry.get(model)?;
        let rule = body.trim();
        let rule = if rule.is_empty() { None } else { Some(rule) };
        let generation = entry.republish(rule)?;
        Ok(format!("generation:{generation}\n"))
    }
}
