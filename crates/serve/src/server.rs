//! The serving loop: a std-only TCP acceptor + fixed worker pool over the
//! vendored HTTP/1.1 framing, routing requests into the registry and the
//! batcher.
//!
//! Routes:
//!
//! | Route                   | Effect                                          |
//! |-------------------------|-------------------------------------------------|
//! | `GET /health`           | liveness: `ok`                                  |
//! | `GET /models`           | one `name generation fit_rows` line per model   |
//! | `GET /metrics`          | `frote-obs` snapshot as JSON                    |
//! | `POST /score/<model>`   | rows in the body → `generation:<g>` + one class |
//! |                         | name per row, micro-batched                     |
//! | `POST /publish/<model>` | optional feedback rule in the body → FROTE edit |
//! |                         | + retrain + lock-free snapshot swap             |
//! | `POST /admin/shutdown`  | graceful stop (std has no signal handling)      |
//!
//! # Fault hardening
//!
//! The thread-per-connection model of PR 9 is gone: a hostile or unlucky
//! burst of connections no longer spawns an unbounded number of threads.
//! Instead one acceptor admits connections into a **bounded backlog**
//! ([`ServeConfig::conn_backlog`]); past the bound the connection is
//! answered with a structured `503` + `Retry-After` and closed — shed at
//! the door, never queued unboundedly. A **fixed worker pool**
//! ([`ServeConfig::workers`]) multiplexes the admitted connections
//! cooperatively: each worker pops a connection, serves up to a small
//! slice of requests, and requeues it, so one slow-loris peer cannot
//! monopolize a worker — per-connection **read/write deadlines**
//! ([`ServeConfig::read_timeout`] / [`ServeConfig::write_timeout`]) turn a
//! stalled peer into a structured `408` instead of a stuck thread.
//!
//! Every connection slice runs unwind-guarded, so an injected failpoint
//! panic (or a latent routing bug) costs one connection, never a worker —
//! and never the server. Failpoint sites on this path: `serve.accept`,
//! `serve.conn.read`, `serve.conn.parse`, `serve.conn.write` (see the
//! `frote-faults` crate for the `FROTE_FAULTS` spec grammar).
//!
//! Score requests are validated at the boundary *before* they reach the
//! batcher: parse errors and guard rejections come back as structured
//! `400`s and never touch a scoring worker. Shutdown drains: the acceptor
//! stops admitting, workers finish the requests already in flight on their
//! connections, and the batcher answers everything it queued.

use std::collections::VecDeque;
use std::io::{BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use frote_obs::{Counter, Histogram};

use crate::batch::{Batcher, DEFAULT_MAX_BATCH_ROWS, DEFAULT_MAX_QUEUE_DEPTH};
use crate::boundary::parse_rows;
use crate::http::{read_request, write_response_ext, Request};
use crate::registry::ModelRegistry;
use crate::ServeError;

/// Connections accepted — arrival patterns vary run to run.
static CONNECTIONS: Counter = Counter::thread_variant("serve.connections");
/// Connections refused at the door: the backlog was full (or an injected
/// accept fault fired). Each got a structured `503` + `Retry-After`.
static SHED_CONNECTIONS: Counter = Counter::thread_variant("serve.shed_connections");
/// Requests that hit a read/write deadline and were answered `408`.
static TIMEOUTS: Counter = Counter::thread_variant("serve.timeouts");
/// Requests rejected with a structured 4xx before any scoring.
static BAD_REQUESTS: Counter = Counter::new("serve.bad_requests");
/// Score requests whose rows failed the boundary guard sweep.
static VALIDATION_REJECTS: Counter = Counter::new("serve.validation_rejects");
/// Wall-clock of one request: route + validate + (batched) score + write.
static REQUEST_SPAN: Histogram = Histogram::new("serve.request_ns");

/// Poll interval for idle connections (bounds both worker hand-off latency
/// and the shutdown drain).
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Requests a worker serves on one connection before requeueing it —
/// cooperative fairness so a busy keep-alive peer cannot starve the rest
/// of the backlog.
const REQUESTS_PER_SLICE: usize = 32;

/// `Retry-After` seconds sent with every load-shedding `503`.
const RETRY_AFTER_SECS: u64 = 1;

/// Default worker-pool size.
pub const DEFAULT_WORKERS: usize = 4;

/// Default bound on admitted-but-unserved connections.
pub const DEFAULT_CONN_BACKLOG: usize = 64;

/// Default per-connection read/write deadline.
pub const DEFAULT_CONN_TIMEOUT: Duration = Duration::from_secs(5);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Row budget per micro-batch.
    pub max_batch_rows: usize,
    /// Fixed worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Bound on admitted connections waiting for a worker; past it new
    /// connections are shed with `503` + `Retry-After`.
    pub conn_backlog: usize,
    /// Bound on the batcher queue; past it score requests are shed with
    /// `503` + `Retry-After`.
    pub max_queue_depth: usize,
    /// Per-read deadline while a request is in flight (slow-client
    /// protection → structured `408`).
    pub read_timeout: Duration,
    /// Per-write deadline for responses.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch_rows: DEFAULT_MAX_BATCH_ROWS,
            workers: DEFAULT_WORKERS,
            conn_backlog: DEFAULT_CONN_BACKLOG,
            max_queue_depth: DEFAULT_MAX_QUEUE_DEPTH,
            read_timeout: DEFAULT_CONN_TIMEOUT,
            write_timeout: DEFAULT_CONN_TIMEOUT,
        }
    }
}

/// One admitted connection: the buffered read half travels with the write
/// half so partially buffered requests survive a requeue.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) {
        let _ = self.reader.get_ref().set_read_timeout(Some(timeout));
    }
}

/// What a worker should do with a connection after one slice.
enum Slice {
    /// Put it back in the queue: still healthy, may have more requests.
    Requeue,
    /// Drop it: peer closed, framing corrupted, deadline hit, or shutdown.
    Close,
}

/// The serving plane: listener + registry + batcher + worker pool.
pub struct Server {
    registry: Arc<ModelRegistry>,
    batcher: Arc<Batcher>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    config: ServeConfig,
    conns: Mutex<VecDeque<Conn>>,
    conn_available: Condvar,
}

impl Server {
    /// Binds the listener and starts the batcher. `run` must be called to
    /// begin accepting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the bind fails.
    pub fn bind(config: &ServeConfig, registry: Arc<ModelRegistry>) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            registry,
            batcher: Arc::new(Batcher::start(config.max_batch_rows, config.max_queue_depth)),
            listener,
            local_addr,
            shutdown: AtomicBool::new(false),
            config: config.clone(),
            conns: Mutex::new(VecDeque::new()),
            conn_available: Condvar::new(),
        })
    }

    /// The bound address (with the OS-assigned port when asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry behind this server.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Requests a graceful stop: flips the flag, self-connects to unblock
    /// the accept loop, and wakes the worker pool to drain. Callable from
    /// any thread.
    pub fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop; the no-op connection drains as idle.
        let _ = TcpStream::connect(self.local_addr);
        self.conn_available.notify_all();
    }

    /// Runs the acceptor + worker pool until [`Server::trigger_shutdown`],
    /// then drains: workers answer every request already in flight on an
    /// admitted connection, and the batcher shutdown answers everything it
    /// queued, before this returns.
    pub fn run(self: &Arc<Self>) {
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let server = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("frote-serve-worker-{i}"))
                    .spawn(move || server.worker_loop())
                    .expect("spawn serve worker")
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Unwind-guarded so an injected `serve.accept` panic sheds one
            // connection instead of killing the acceptor.
            let _ = catch_unwind(AssertUnwindSafe(|| self.admit(stream)));
        }
        self.shutdown.store(true, Ordering::Release);
        self.conn_available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        self.batcher.shutdown();
    }

    /// Admission control: queue the connection for the worker pool, or
    /// shed it with a structured `503` + `Retry-After` when the backlog
    /// (or an injected `serve.accept` fault) says no.
    fn admit(&self, mut stream: TcpStream) {
        CONNECTIONS.inc();
        // Without this, Nagle on our side interacts with the peer's
        // delayed ACKs to put a ~40ms floor under every response.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let refused = frote_faults::point("serve.accept").is_err();
        let reader = match stream.try_clone() {
            Ok(read_half) => BufReader::new(read_half),
            Err(_) => return,
        };
        if !refused {
            let mut conns = lock(&self.conns);
            if conns.len() < self.config.conn_backlog.max(1) {
                conns.push_back(Conn { reader, writer: stream });
                drop(conns);
                self.conn_available.notify_one();
                return;
            }
        }
        SHED_CONNECTIONS.inc();
        let body = format!("{}\n", ServeError::Overloaded);
        let _ = write_response_ext(&mut stream, 503, &body, false, Some(RETRY_AFTER_SECS));
    }

    /// One pool worker: pop a connection, serve a slice, requeue or close.
    /// Runs until shutdown *and* an empty queue — so connections admitted
    /// before shutdown still get their in-flight requests answered.
    fn worker_loop(&self) {
        loop {
            let conn = {
                let mut conns = lock(&self.conns);
                loop {
                    if let Some(conn) = conns.pop_front() {
                        break conn;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    conns = self.conn_available.wait(conns).unwrap_or_else(|e| e.into_inner());
                }
            };
            let mut conn = conn;
            // Unwind-guarded: an injected panic (or a latent bug) on this
            // connection's requests costs the connection, not the worker.
            let disposition = catch_unwind(AssertUnwindSafe(|| self.serve_slice(&mut conn)));
            match disposition {
                Ok(Slice::Requeue) => {
                    lock(&self.conns).push_back(conn);
                    self.conn_available.notify_one();
                }
                Ok(Slice::Close) | Err(_) => {}
            }
        }
    }

    /// Serves up to [`REQUESTS_PER_SLICE`] requests on one connection.
    fn serve_slice(&self, conn: &mut Conn) -> Slice {
        for _ in 0..REQUESTS_PER_SLICE {
            // The drain boundary: a request already past this check is
            // answered in full (and anything it queued is drained by the
            // batcher shutdown), but no *new* request is started — a peer
            // that keeps pipelining cannot hold the shutdown hostage.
            if self.shutdown.load(Ordering::Acquire) {
                return Slice::Close;
            }
            // Idle wait via peek: nothing is consumed, so a poll timeout
            // cannot corrupt the framing of a request that arrives later.
            if conn.reader.buffer().is_empty() {
                conn.set_read_timeout(IDLE_POLL);
                match conn.reader.get_ref().peek(&mut [0u8; 1]) {
                    Ok(0) => return Slice::Close,
                    Ok(_) => {}
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                        return Slice::Requeue;
                    }
                    Err(_) => return Slice::Close,
                }
            }
            // A request is in flight: switch from the idle poll to the
            // real deadline so a stalled peer becomes a structured 408.
            conn.set_read_timeout(self.config.read_timeout);
            let _span = REQUEST_SPAN.span();
            if frote_faults::point("serve.conn.read").is_err() {
                return Slice::Close;
            }
            let request = match read_request(&mut conn.reader) {
                Ok(Some(request)) => request,
                Ok(None) => return Slice::Close,
                Err(err) => {
                    // Framing is corrupt (or the deadline expired): answer
                    // with the structured status, then close.
                    let (status, retry_after) = error_status(&err);
                    let body = format!("{err}\n");
                    let _ = write_response_ext(&mut conn.writer, status, &body, false, retry_after);
                    return Slice::Close;
                }
            };
            let keep_alive = request.keep_alive;
            let (status, body, retry_after) = match frote_faults::point("serve.conn.parse") {
                Ok(()) => self.route(&request),
                Err(fault) => error_response(&ServeError::from(fault)),
            };
            if frote_faults::point("serve.conn.write").is_err() {
                return Slice::Close;
            }
            let written =
                write_response_ext(&mut conn.writer, status, &body, keep_alive, retry_after);
            if written.is_err() || !keep_alive {
                return Slice::Close;
            }
        }
        // Slice budget exhausted: requeue so other connections get a turn.
        Slice::Requeue
    }

    /// Routes one request to `(status, body, retry_after)`.
    fn route(&self, request: &Request) -> (u16, String, Option<u64>) {
        let outcome = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health") => Ok("ok\n".to_string()),
            ("GET", "/models") => Ok(self
                .registry
                .list()
                .into_iter()
                .map(|(name, generation, fit_rows)| format!("{name} {generation} {fit_rows}\n"))
                .collect()),
            ("GET", "/metrics") => Ok(frote_obs::snapshot_json()),
            ("POST", "/admin/shutdown") => {
                self.trigger_shutdown();
                Ok("shutting down\n".to_string())
            }
            ("POST", path) if path.starts_with("/score/") => {
                self.score(&path["/score/".len()..], &request.body)
            }
            ("POST", path) if path.starts_with("/publish/") => {
                self.publish(&path["/publish/".len()..], &request.body)
            }
            (_, path) => Err(ServeError::BadRequest {
                detail: format!("no route for {} {path}", request.method),
            }),
        };
        match outcome {
            Ok(body) => (200, body, None),
            Err(err) => error_response(&err),
        }
    }

    fn score(&self, model: &str, body: &str) -> Result<String, ServeError> {
        let entry = self.registry.get(model)?;
        // One snapshot resolve for validation; the batcher resolves its
        // own (possibly newer) snapshot and reports which generation the
        // response came from.
        let (rows, schema) = {
            let snapshot = entry.current();
            let rows = parse_rows(snapshot.schema(), body)?;
            snapshot.guard().check(&rows)?;
            (rows, Arc::clone(snapshot.schema()))
        };
        let response = self.batcher.submit(entry, rows)?;
        let mut out = format!("generation:{}\n", response.generation);
        for &class in &response.predictions {
            out.push_str(schema.class_name(class));
            out.push('\n');
        }
        Ok(out)
    }

    fn publish(&self, model: &str, body: &str) -> Result<String, ServeError> {
        let entry = self.registry.get(model)?;
        let rule = body.trim();
        let rule = if rule.is_empty() { None } else { Some(rule) };
        let generation = entry.republish(rule)?;
        Ok(format!("generation:{generation}\n"))
    }
}

/// Maps an error to `(status, retry_after)` and bumps the right counters.
fn error_status(err: &ServeError) -> (u16, Option<u64>) {
    let status = match err {
        ServeError::UnknownModel { .. } => 404,
        ServeError::Unavailable | ServeError::Io { .. } => 503,
        ServeError::Overloaded => 503,
        ServeError::Timeout => {
            TIMEOUTS.inc();
            408
        }
        ServeError::HeadersTooLarge => 431,
        ServeError::Fault { .. } => 500,
        ServeError::RowsRejected { .. } => {
            VALIDATION_REJECTS.inc();
            400
        }
        _ => 400,
    };
    if status == 400 {
        BAD_REQUESTS.inc();
    }
    let retry_after = matches!(err, ServeError::Overloaded).then_some(RETRY_AFTER_SECS);
    (status, retry_after)
}

/// [`error_status`] plus the rendered single-line body.
fn error_response(err: &ServeError) -> (u16, String, Option<u64>) {
    let (status, retry_after) = error_status(err);
    (status, format!("{err}\n"), retry_after)
}
