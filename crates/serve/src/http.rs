//! A minimal vendored HTTP/1.1 line protocol over std-only I/O.
//!
//! The offline-deps rule bans real HTTP stacks, and the serving plane needs
//! only a sliver of the spec: a request line, case-insensitive
//! `Content-Length` / `Connection` headers, an optional body, and `200` /
//! `4xx` / `503` responses. Requests are read from any [`BufRead`] and
//! responses written to any [`Write`], so the framing is unit-testable over
//! in-memory buffers and shared verbatim by the server and the client.

use std::io::{BufRead, Read, Write};

use crate::ServeError;

/// Longest accepted request body, in bytes — a boundary guard against a
/// malformed or hostile `Content-Length` allocating unbounded memory.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Longest accepted header section (request line + headers + blank line),
/// in bytes. The body cap alone does not stop a hostile client from
/// streaming unbounded header lines; past this budget the request is
/// rejected with a structured `431` instead of growing memory.
pub const MAX_HEADER_BYTES: u64 = 16 * 1024;

/// Reads one `\n`-terminated line from the capped header section.
/// A line that runs into the cap without its terminator is the
/// header-bomb case: [`ServeError::HeadersTooLarge`], never an allocation
/// proportional to what the peer sends.
fn read_header_line<R: BufRead>(
    head: &mut std::io::Take<R>,
    line: &mut String,
) -> Result<usize, ServeError> {
    line.clear();
    let n = head.read_line(line)?;
    if head.limit() == 0 && !line.ends_with('\n') {
        return Err(ServeError::HeadersTooLarge);
    }
    Ok(n)
}

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path (`/score/wine-rf`), as sent; no query parsing.
    pub path: String,
    /// Request body (empty when no `Content-Length` header was present).
    pub body: String,
    /// Whether the peer asked to keep the connection open
    /// (HTTP/1.1 default: yes, unless `Connection: close`).
    pub keep_alive: bool,
}

/// Reads one request from `reader`.
///
/// Returns `Ok(None)` on a clean EOF before the request line — the peer
/// closed an idle keep-alive connection, which is not an error.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing,
/// [`ServeError::HeadersTooLarge`] when the header section runs past
/// [`MAX_HEADER_BYTES`], [`ServeError::Timeout`] when a read deadline
/// expires mid-request, [`ServeError::Io`] on transport failure.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ServeError> {
    let mut head = reader.by_ref().take(MAX_HEADER_BYTES);
    let mut line = String::new();
    if read_header_line(&mut head, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ServeError::BadRequest {
                detail: format!("malformed request line {:?}", line.trim_end()),
            })
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::BadRequest { detail: format!("unsupported version {version:?}") });
    }

    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        if read_header_line(&mut head, &mut line)? == 0 {
            return Err(ServeError::BadRequest { detail: "eof inside headers".to_string() });
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ServeError::BadRequest { detail: format!("malformed header {trimmed:?}") });
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| ServeError::BadRequest {
                detail: format!("bad content-length {value:?}"),
            })?;
            if content_length > MAX_BODY_BYTES {
                return Err(ServeError::BadRequest {
                    detail: format!("content-length {content_length} exceeds {MAX_BODY_BYTES}"),
                });
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| match ServeError::from(e) {
        // A deadline mid-body is the slow-client case (408), not a
        // framing error.
        ServeError::Timeout => ServeError::Timeout,
        other => ServeError::BadRequest {
            detail: format!("short body (wanted {content_length} bytes): {other}"),
        },
    })?;
    let body = String::from_utf8(body)
        .map_err(|_| ServeError::BadRequest { detail: "body is not utf-8".to_string() })?;
    Ok(Some(Request { method, path, body, keep_alive }))
}

/// Canonical reason phrase for the status codes this plane emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one `text/plain` response and flushes.
///
/// # Errors
///
/// [`ServeError::Io`] on transport failure.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> Result<(), ServeError> {
    write_response_ext(writer, status, body, keep_alive, None)
}

/// [`write_response`] with an optional `Retry-After` header (seconds) —
/// the load-shedding contract: a `503` from admission control tells the
/// client when to come back.
///
/// # Errors
///
/// [`ServeError::Io`] on transport failure.
pub fn write_response_ext<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
) -> Result<(), ServeError> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: {connection}\r\n{retry}\r\n{body}",
        reason(status),
        body.len(),
    )?;
    writer.flush()?;
    Ok(())
}

/// Writes one request (the client half of the protocol) and flushes.
/// Connections are keep-alive by default; the server honors
/// `Connection: close` per-request, which this writer never sends.
///
/// # Errors
///
/// [`ServeError::Io`] on transport failure.
pub fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(), ServeError> {
    write!(writer, "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len(),)?;
    writer.flush()?;
    Ok(())
}

/// One parsed response on the client side: status code, body, and the
/// `Retry-After` hint when the server sent one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `400`, …).
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Parsed `Retry-After` header (seconds), when present.
    pub retry_after: Option<u64>,
}

/// Reads one response from `reader` (the client half of the protocol).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing (the *peer* misbehaved),
/// [`ServeError::Io`] on transport failure.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, ServeError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ServeError::Io { detail: "connection closed before response".to_string() });
    }
    let mut parts = line.split_whitespace();
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| ServeError::BadRequest { detail: format!("bad status code {code:?}") })?,
        _ => {
            return Err(ServeError::BadRequest {
                detail: format!("malformed status line {:?}", line.trim_end()),
            })
        }
    };
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServeError::BadRequest { detail: "eof inside headers".to_string() });
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| ServeError::BadRequest {
                    detail: format!("bad content-length {:?}", value.trim()),
                })?;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ServeError::Io { detail: format!("short response body: {e}") })?;
    let body = String::from_utf8(body)
        .map_err(|_| ServeError::BadRequest { detail: "body is not utf-8".to_string() })?;
    Ok(Response { status, body, retry_after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_body() {
        let raw = "POST /score/m HTTP/1.1\r\nContent-Length: 5\r\nHost: x\r\n\r\nhello";
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score/m");
        assert_eq!(req.body, "hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_case_insensitive_headers() {
        let raw = "GET /health HTTP/1.1\r\nCONNECTION: Close\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert!(!req.keep_alive);
        assert_eq!(req.body, "");
    }

    #[test]
    fn eof_before_request_is_none() {
        assert_eq!(read_request(&mut Cursor::new("")).unwrap(), None);
    }

    #[test]
    fn malformed_request_line_is_structured_error() {
        let err = read_request(&mut Cursor::new("garbage\r\n\r\n")).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest { .. }), "got {err:?}");
    }

    #[test]
    fn oversized_content_length_rejected() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest { .. }), "got {err:?}");
    }

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, "POST", "/score/wine-rf", "1,2,3\n").unwrap();
        let req = read_request(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score/wine-rf");
        assert_eq!(req.body, "1,2,3\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "generation:3\nacc\n", true).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "generation:3\nacc\n");
    }

    #[test]
    fn oversized_header_section_is_431_not_oom() {
        // One giant header line with no terminator: the reader must stop at
        // the cap, not buffer what the peer keeps sending.
        let mut raw = String::from("POST /x HTTP/1.1\r\nX-Bomb: ");
        raw.push_str(&"a".repeat(2 * MAX_HEADER_BYTES as usize));
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err, ServeError::HeadersTooLarge);

        // Many small headers crossing the cap hit the same wall.
        let mut raw = String::from("GET /health HTTP/1.1\r\n");
        for i in 0..2048 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "b".repeat(64)));
        }
        raw.push_str("\r\n");
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err, ServeError::HeadersTooLarge);

        // A request just under the cap still parses.
        let raw = format!(
            "POST /x HTTP/1.1\r\nX-Pad: {}\r\nContent-Length: 2\r\n\r\nok",
            "c".repeat(1024)
        );
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn header_cap_does_not_eat_into_the_body() {
        // The body is read from the raw stream, not the capped head: a
        // body larger than MAX_HEADER_BYTES must still arrive whole.
        let body = "z".repeat(3 * MAX_HEADER_BYTES as usize);
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        let req = read_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.body.len(), body.len());
    }

    #[test]
    fn retry_after_roundtrip() {
        let mut buf = Vec::new();
        write_response_ext(&mut buf, 503, "overloaded\n", true, Some(2)).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(2));

        let mut buf = Vec::new();
        write_response(&mut buf, 200, "ok\n", true).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.retry_after, None);
    }

    #[test]
    fn short_body_is_error_not_hang() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest { .. }), "got {err:?}");
    }
}
