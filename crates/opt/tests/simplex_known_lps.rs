//! The simplex solver against linear programs with textbook-known optima.
//! The in-module unit tests cover solver mechanics (phase 1, unbounded,
//! infeasible); this suite pins exact optimal vertices and values from
//! standard references so a future pivoting change cannot silently drift.

use frote_opt::simplex::{LinearProgram, LpOutcome};

fn assert_optimal(lp: &LinearProgram, want_x: &[f64], want_value: f64) {
    match lp.solve() {
        LpOutcome::Optimal { x, value } => {
            assert!((value - want_value).abs() < 1e-7, "value {value}, want {want_value}");
            assert_eq!(x.len(), want_x.len());
            for (i, (got, want)) in x.iter().zip(want_x).enumerate() {
                assert!((got - want).abs() < 1e-7, "x[{i}] = {got}, want {want}");
            }
        }
        other => panic!("expected optimal, got {other:?}"),
    }
}

/// Dantzig's classic: max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
/// Optimum at (2, 6) with value 36.
#[test]
fn dantzig_example() {
    let lp = LinearProgram::new(vec![3.0, 5.0])
        .constraint(vec![1.0, 0.0], 4.0)
        .constraint(vec![0.0, 2.0], 12.0)
        .constraint(vec![3.0, 2.0], 18.0);
    assert_optimal(&lp, &[2.0, 6.0], 36.0);
}

/// max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6. Optimum at (3, 1.5), value 21.
#[test]
fn two_constraint_fractional_vertex() {
    let lp = LinearProgram::new(vec![5.0, 4.0])
        .constraint(vec![6.0, 4.0], 24.0)
        .constraint(vec![1.0, 2.0], 6.0);
    assert_optimal(&lp, &[3.0, 1.5], 21.0);
}

/// A three-variable product-mix LP: max 5x1 + 4x2 + 3x3 subject to
/// 2x1 + 3x2 + x3 ≤ 5, 4x1 + x2 + 2x3 ≤ 11, 3x1 + 4x2 + 2x3 ≤ 8
/// (Chvátal, *Linear Programming*, ch. 2). Optimum (2, 0, 1), value 13.
#[test]
fn chvatal_product_mix() {
    let lp = LinearProgram::new(vec![5.0, 4.0, 3.0])
        .constraint(vec![2.0, 3.0, 1.0], 5.0)
        .constraint(vec![4.0, 1.0, 2.0], 11.0)
        .constraint(vec![3.0, 4.0, 2.0], 8.0);
    assert_optimal(&lp, &[2.0, 0.0, 1.0], 13.0);
}

/// Minimization via negated objective with ≥ constraints (diet-style):
/// min 0.6a + 0.35b s.t. 5a + 7b ≥ 8, 4a + 2b ≥ 15, 2a + b ≥ 3.
/// The second constraint dominates; optimum at a = 3.75, b = 0, cost 2.25.
#[test]
fn diet_style_minimization() {
    let lp = LinearProgram::new(vec![-0.6, -0.35])
        .constraint_ge(vec![5.0, 7.0], 8.0)
        .constraint_ge(vec![4.0, 2.0], 15.0)
        .constraint_ge(vec![2.0, 1.0], 3.0);
    match lp.solve() {
        LpOutcome::Optimal { x, value } => {
            assert!((x[0] - 3.75).abs() < 1e-7, "a = {}", x[0]);
            assert!(x[1].abs() < 1e-7, "b = {}", x[1]);
            assert!((-value - 2.25).abs() < 1e-7, "cost = {}", -value);
        }
        other => panic!("expected optimal, got {other:?}"),
    }
}

/// Beale's cycling example. With a naive most-negative pivot rule the
/// simplex method cycles forever on this LP; any anti-cycling safeguard
/// must terminate at value 0.05.
#[test]
fn beale_cycling_example_terminates() {
    let lp = LinearProgram::new(vec![0.75, -150.0, 0.02, -6.0])
        .constraint(vec![0.25, -60.0, -0.04, 9.0], 0.0)
        .constraint(vec![0.5, -90.0, -0.02, 3.0], 0.0)
        .constraint(vec![0.0, 0.0, 1.0, 0.0], 1.0);
    match lp.solve() {
        LpOutcome::Optimal { value, .. } => {
            assert!((value - 0.05).abs() < 1e-7, "value = {value}");
        }
        other => panic!("expected optimal, got {other:?}"),
    }
}

/// A redundant + binding mix where the optimum sits on a degenerate vertex:
/// max x + y s.t. x ≤ 2, y ≤ 2, x + y ≤ 4 (third constraint is the sum of
/// the first two, so the vertex (2,2) is over-determined).
#[test]
fn degenerate_vertex_exact() {
    let lp = LinearProgram::new(vec![1.0, 1.0])
        .constraint(vec![1.0, 0.0], 2.0)
        .constraint(vec![0.0, 1.0], 2.0)
        .constraint(vec![1.0, 1.0], 4.0);
    assert_optimal(&lp, &[2.0, 2.0], 4.0);
}

/// Scaling robustness: multiplying all constraints by a large constant must
/// not change the argmax (only the slack magnitudes).
#[test]
fn scale_invariance_of_argmax() {
    for scale in [1.0, 1e3, 1e6] {
        let lp = LinearProgram::new(vec![3.0, 5.0])
            .constraint(vec![scale, 0.0], 4.0 * scale)
            .constraint(vec![0.0, 2.0 * scale], 12.0 * scale)
            .constraint(vec![3.0 * scale, 2.0 * scale], 18.0 * scale);
        assert_optimal(&lp, &[2.0, 6.0], 36.0);
    }
}
