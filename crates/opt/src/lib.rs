//! # frote-opt
//!
//! Optimization substrate for the FROTE (MLSys 2022) reproduction: a dense
//! two-phase simplex LP solver and the base-instance-selection integer
//! program of the paper's Eq. (5):
//!
//! ```text
//! max  Σ w_i z_i
//! s.t. k+1 <= Σ_i a_ji z_i <= η/m   for every rule j
//!      z_i ∈ {0, 1}
//! ```
//!
//! The paper notes "in practice it can be solved quickly as linear
//! relaxations directly provide integral optimal solutions in most cases";
//! [`ip::SelectionProblem::solve`] accordingly solves the LP relaxation with
//! [`simplex`], rounds, and greedily repairs feasibility, with an exact
//! branch-and-bound ([`ip::SelectionProblem::solve_exact`]) available for
//! small instances and used by the test suite to validate the heuristic
//! path.
//!
//! ```
//! use frote_opt::simplex::{LinearProgram, LpOutcome};
//!
//! // max x + y  s.t.  x + 2y <= 4, 3x + y <= 6, x,y >= 0
//! let lp = LinearProgram::new(vec![1.0, 1.0])
//!     .constraint(vec![1.0, 2.0], 4.0)
//!     .constraint(vec![3.0, 1.0], 6.0);
//! match lp.solve() {
//!     LpOutcome::Optimal { value, .. } => assert!((value - 2.8).abs() < 1e-9),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod ip;
pub mod simplex;

pub use ip::{SelectionProblem, SelectionSolution};
pub use simplex::{LinearProgram, LpOutcome};
