//! Dense two-phase tableau simplex.
//!
//! Solves `max c·x` subject to `A x <= b`, `x >= 0` (entries of `b` may be
//! negative — phase 1 introduces artificial variables and drives them out).
//! Pivoting uses Bland's rule, which guarantees termination at a modest
//! constant-factor cost; problem sizes here (FROTE's Eq. 5 relaxations) are
//! tiny by LP standards.

/// A linear program in `max c·x, A x <= b, x >= 0` form.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
}

/// Result of [`LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal {
        /// Optimal primal solution.
        x: Vec<f64>,
        /// Objective value `c·x`.
        value: f64,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

const EPS: f64 = 1e-9;
const MAX_PIVOTS: usize = 100_000;

impl LinearProgram {
    /// Starts a program maximizing `objective · x`.
    pub fn new(objective: Vec<f64>) -> Self {
        LinearProgram { objective, rows: Vec::new(), rhs: Vec::new() }
    }

    /// Adds the constraint `coeffs · x <= bound`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the objective's arity.
    pub fn constraint(mut self, coeffs: Vec<f64>, bound: f64) -> Self {
        assert_eq!(coeffs.len(), self.objective.len(), "constraint arity mismatch");
        self.rows.push(coeffs);
        self.rhs.push(bound);
        self
    }

    /// Adds `coeffs · x >= bound` (stored as the negated `<=` row).
    pub fn constraint_ge(self, coeffs: Vec<f64>, bound: f64) -> Self {
        let neg: Vec<f64> = coeffs.iter().map(|c| -c).collect();
        self.constraint(neg, -bound)
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau.
///
/// Column layout: `n` structural vars, `m` slacks, up to `m` artificials,
/// then the RHS column. Row `m` holds the (phase-dependent) objective.
struct Tableau {
    /// `(m + 1) x (width + 1)` matrix.
    t: Vec<Vec<f64>>,
    basis: Vec<usize>,
    n: usize,
    m: usize,
    n_artificial: usize,
    /// Original objective, padded with zeros on slack/artificial columns.
    obj_cache: Vec<f64>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let n = lp.n_vars();
        let m = lp.n_constraints();
        // Artificials are needed for rows whose (possibly negated) RHS was
        // negative.
        let needs_artificial: Vec<bool> = lp.rhs.iter().map(|&b| b < 0.0).collect();
        let n_artificial = needs_artificial.iter().filter(|&&x| x).count();
        let width = n + m + n_artificial;
        let mut t = vec![vec![0.0; width + 1]; m + 1];
        let mut basis = vec![0usize; m];
        let mut art_col = n + m;
        for i in 0..m {
            let flip = needs_artificial[i];
            let sign = if flip { -1.0 } else { 1.0 };
            for (dst, &src) in t[i][..n].iter_mut().zip(&lp.rows[i]) {
                *dst = sign * src;
            }
            t[i][n + i] = sign; // slack (negated when the row was flipped)
            t[i][width] = sign * lp.rhs[i];
            if flip {
                t[i][art_col] = 1.0;
                basis[i] = art_col;
                art_col += 1;
            } else {
                basis[i] = n + i;
            }
        }
        let mut obj_cache = vec![0.0; width];
        obj_cache[..n].copy_from_slice(&lp.objective);
        Tableau { t, basis, n, m, n_artificial, obj_cache }
    }

    fn solve(mut self) -> LpOutcome {
        let width = self.width();
        if self.n_artificial > 0 {
            // Phase 1: minimize the sum of artificials == maximize their
            // negation. Objective row: +1 for each artificial, then reduce
            // by the basic artificial rows to price out the initial basis.
            for j in 0..=width {
                self.t[self.m][j] = 0.0;
            }
            for a in (self.n + self.m)..width {
                self.t[self.m][a] = 1.0;
            }
            for i in 0..self.m {
                if self.basis[i] >= self.n + self.m {
                    let row = self.t[i].clone();
                    for (dst, &src) in self.t[self.m].iter_mut().zip(&row) {
                        *dst -= src;
                    }
                }
            }
            if !self.run_pivots() {
                return LpOutcome::Unbounded; // cannot happen in phase 1
            }
            let phase1 = -self.t[self.m][width];
            if phase1 > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive any residual basic artificials out of the basis.
            for i in 0..self.m {
                if self.basis[i] >= self.n + self.m {
                    if let Some(j) = (0..self.n + self.m).find(|&j| self.t[i][j].abs() > EPS) {
                        self.pivot(i, j);
                    }
                    // A fully-zero row is redundant; its artificial stays
                    // basic at value 0, which is harmless.
                }
            }
        }
        // Phase 2: install the real objective (as its negation in the cost
        // row so positive reduced costs mean "improvable") and price out the
        // current basis.
        let obj: Vec<f64> =
            (0..width).map(|j| if j < self.n { -self.objectives(j) } else { 0.0 }).collect();
        self.t[self.m][..width].copy_from_slice(&obj);
        self.t[self.m][width] = 0.0;
        // Forbid artificials from re-entering: give them strongly positive
        // cost.
        for a in (self.n + self.m)..width {
            self.t[self.m][a] = 1e30;
        }
        for i in 0..self.m {
            let b = self.basis[i];
            let coeff = self.t[self.m][b];
            if coeff.abs() > EPS {
                let row = self.t[i].clone();
                for (dst, &src) in self.t[self.m].iter_mut().zip(&row) {
                    *dst -= coeff * src;
                }
            }
        }
        if !self.run_pivots() {
            return LpOutcome::Unbounded;
        }
        let mut x = vec![0.0; self.n];
        for i in 0..self.m {
            if self.basis[i] < self.n {
                x[self.basis[i]] = self.t[i][width];
            }
        }
        let value = x.iter().enumerate().map(|(j, &v)| self.objectives(j) * v).sum();
        LpOutcome::Optimal { x, value }
    }

    fn objectives(&self, j: usize) -> f64 {
        self.obj_cache[j]
    }

    fn run_pivots(&mut self) -> bool {
        let width = self.width();
        for _ in 0..MAX_PIVOTS {
            // Bland: entering = lowest-index column with negative reduced
            // cost (we store the cost row so that negative means improving
            // for maximization).
            let Some(enter) = (0..width).find(|&j| self.t[self.m][j] < -EPS) else {
                return true; // optimal
            };
            // Ratio test; Bland tie-break on leaving variable index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let a = self.t[i][enter];
                if a > EPS {
                    let ratio = self.t[i][width] / a;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - EPS
                                || ((ratio - lr).abs() <= EPS && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            match leave {
                None => return false, // unbounded direction
                Some((row, _)) => self.pivot(row, enter),
            }
        }
        true // pivot cap: return the current (feasible) vertex
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width();
        let p = self.t[row][col];
        for j in 0..=width {
            self.t[row][j] /= p;
        }
        for i in 0..=self.m {
            if i != row {
                let f = self.t[i][col];
                if f.abs() > EPS {
                    for j in 0..=width {
                        self.t[i][j] -= f * self.t[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
    }

    fn width(&self) -> usize {
        self.n + self.m + self.n_artificial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LinearProgram) -> (Vec<f64>, f64) {
        match lp.solve() {
            LpOutcome::Optimal { x, value } => (x, value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_two_variable() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, v=36
        let lp = LinearProgram::new(vec![3.0, 5.0])
            .constraint(vec![1.0, 0.0], 4.0)
            .constraint(vec![0.0, 2.0], 12.0)
            .constraint(vec![3.0, 2.0], 18.0);
        let (x, v) = optimal(&lp);
        assert!((v - 36.0).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // max -x s.t. x >= 3, x <= 10 -> x=3, v=-3
        let lp = LinearProgram::new(vec![-1.0])
            .constraint_ge(vec![1.0], 3.0)
            .constraint(vec![1.0], 10.0);
        let (x, v) = optimal(&lp);
        assert!((x[0] - 3.0).abs() < 1e-7);
        assert!((v + 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let lp =
            LinearProgram::new(vec![1.0]).constraint(vec![1.0], 1.0).constraint_ge(vec![1.0], 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no upper bound
        let lp = LinearProgram::new(vec![1.0]).constraint_ge(vec![1.0], 0.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn no_constraints_zero_objective_vertex() {
        // max -x - y with x,y >= 0 -> origin, v=0
        let lp = LinearProgram::new(vec![-1.0, -1.0]);
        let (x, v) = optimal(&lp);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn box_constrained_selection_shape() {
        // The Eq. 5 relaxation shape: max w·z, L <= sum z <= U, z in [0,1].
        let w = [5.0, 4.0, 3.0, 2.0, 1.0];
        let n = w.len();
        let mut lp = LinearProgram::new(w.to_vec())
            .constraint(vec![1.0; n], 3.0) // sum <= 3
            .constraint_ge(vec![1.0; n], 2.0); // sum >= 2
        for i in 0..n {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            lp = lp.constraint(e, 1.0); // z_i <= 1
        }
        let (x, v) = optimal(&lp);
        assert!((v - 12.0).abs() < 1e-7, "value {v}");
        // Integral vertex: the top three weights selected.
        for (i, &xi) in x.iter().enumerate() {
            let expected = if i < 3 { 1.0 } else { 0.0 };
            assert!((xi - expected).abs() < 1e-7, "x[{i}] = {xi}");
        }
    }

    #[test]
    fn equality_via_pair_of_inequalities() {
        // max x + y s.t. x + y == 5 (as <= and >=), x <= 3.
        let lp = LinearProgram::new(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], 5.0)
            .constraint_ge(vec![1.0, 1.0], 5.0)
            .constraint(vec![1.0, 0.0], 3.0);
        let (_, v) = optimal(&lp);
        assert!((v - 5.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_redundant_rows() {
        let lp = LinearProgram::new(vec![1.0])
            .constraint(vec![1.0], 2.0)
            .constraint(vec![1.0], 2.0)
            .constraint(vec![2.0], 4.0);
        let (x, v) = optimal(&lp);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((v - 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let _ = LinearProgram::new(vec![1.0]).constraint(vec![1.0, 2.0], 1.0);
    }

    #[test]
    fn stress_many_variables() {
        // max sum(x) s.t. x_i <= i+1 for 60 vars plus a coupling budget.
        let n = 60;
        let mut lp = LinearProgram::new(vec![1.0; n]);
        for i in 0..n {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            lp = lp.constraint(e, (i + 1) as f64);
        }
        // sum(x) <= 100 binds before the individual caps do.
        lp = lp.constraint(vec![1.0; n], 100.0);
        let (x, v) = optimal(&lp);
        assert!((v - 100.0).abs() < 1e-6, "value {v}");
        let sum: f64 = x.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
        for (i, &xi) in x.iter().enumerate() {
            assert!(xi <= (i + 1) as f64 + 1e-7);
            assert!(xi >= -1e-9);
        }
    }

    #[test]
    fn accessors() {
        let lp = LinearProgram::new(vec![1.0, 2.0]).constraint(vec![1.0, 0.0], 3.0);
        assert_eq!(lp.n_vars(), 2);
        assert_eq!(lp.n_constraints(), 1);
    }
}
