//! The base-instance-selection integer program (paper Eq. 5).
//!
//! Given a base population `P` with per-instance weights `w_i` and a
//! rule-coverage matrix `a_ji` (instance `i` covered by rule `j`), select a
//! binary `z` maximizing `Σ w_i z_i` subject to per-rule bounds
//! `L <= Σ_i a_ji z_i <= U`.
//!
//! The default path solves the LP relaxation with the crate's simplex,
//! rounds, and greedily repairs feasibility (the paper observes relaxations
//! are almost always integral, so repair rarely fires); an exact
//! branch-and-bound handles small instances and validates the heuristic in
//! tests.

use crate::simplex::{LinearProgram, LpOutcome};

/// A concrete Eq. 5 instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionProblem {
    weights: Vec<f64>,
    /// `coverage[j]` lists the instance indices covered by rule `j`.
    coverage: Vec<Vec<usize>>,
    lower: usize,
    upper: usize,
}

/// Solution to a [`SelectionProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionSolution {
    /// Selected instance indices (ascending).
    pub selected: Vec<usize>,
    /// Total weight of the selection.
    pub weight: f64,
    /// Whether every per-rule bound is satisfied exactly; `false` means the
    /// repair heuristic returned a best-effort selection (e.g. the instance
    /// was genuinely infeasible).
    pub feasible: bool,
}

impl SelectionProblem {
    /// Creates a problem.
    ///
    /// `lower`/`upper` are the per-rule selection bounds (`k+1` and `η/m` in
    /// the paper). `upper` is clamped up to `lower` so the bounds are always
    /// consistent, matching FROTE's behaviour when `η/m < k+1`.
    ///
    /// # Panics
    ///
    /// Panics if a coverage index is out of range of `weights`.
    pub fn new(weights: Vec<f64>, coverage: Vec<Vec<usize>>, lower: usize, upper: usize) -> Self {
        let p = weights.len();
        for rule in &coverage {
            for &i in rule {
                assert!(i < p, "coverage index {i} out of range for {p} instances");
            }
        }
        SelectionProblem { weights, coverage, lower, upper: upper.max(lower) }
    }

    /// Number of instances.
    pub fn n_instances(&self) -> usize {
        self.weights.len()
    }

    /// Number of rules.
    pub fn n_rules(&self) -> usize {
        self.coverage.len()
    }

    /// Whether a 0/1 selection (as an index set) satisfies all bounds.
    pub fn is_feasible(&self, selected: &[usize]) -> bool {
        let mut z = vec![false; self.weights.len()];
        for &i in selected {
            z[i] = true;
        }
        self.coverage.iter().all(|rule| {
            let c = rule.iter().filter(|&&i| z[i]).count();
            c >= self.lower && c <= self.upper
        })
    }

    /// LP-relaxation + rounding + greedy repair (the production path).
    pub fn solve(&self) -> SelectionSolution {
        let p = self.weights.len();
        if p == 0 || self.coverage.is_empty() {
            return SelectionSolution { selected: Vec::new(), weight: 0.0, feasible: true };
        }
        let fractional = self.solve_relaxation();
        let mut z: Vec<bool> = match fractional {
            Some(x) => x.iter().map(|&v| v >= 0.5).collect(),
            None => vec![false; p],
        };
        self.repair(&mut z);
        self.finish(z)
    }

    /// Pure greedy construction (no LP): per rule, select the top-weight
    /// covered instances up to `lower`, then pad globally up to `upper` where
    /// beneficial. Useful as a fast fallback and ablation point.
    pub fn solve_greedy(&self) -> SelectionSolution {
        let mut z = vec![false; self.weights.len()];
        self.repair(&mut z);
        self.finish(z)
    }

    /// Exact branch-and-bound over instances (exponential; intended for
    /// `n_instances <= ~24`, primarily to validate the heuristic in tests).
    ///
    /// Returns `None` when the instance is infeasible.
    pub fn solve_exact(&self) -> Option<SelectionSolution> {
        let p = self.weights.len();
        assert!(p <= 24, "exact solver is for small instances");
        let mut best: Option<(f64, Vec<usize>)> = None;
        // Order instances by descending weight for better pruning.
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| {
            self.weights[b].partial_cmp(&self.weights[a]).expect("finite weights")
        });
        let suffix_positive: Vec<f64> = {
            let mut s = vec![0.0; p + 1];
            for i in (0..p).rev() {
                s[i] = s[i + 1] + self.weights[order[i]].max(0.0);
            }
            s
        };
        let mut chosen: Vec<usize> = Vec::new();
        self.bb(&order, &suffix_positive, 0, 0.0, &mut chosen, &mut best);
        best.map(|(weight, mut selected)| {
            selected.sort_unstable();
            SelectionSolution { selected, weight, feasible: true }
        })
    }

    fn bb(
        &self,
        order: &[usize],
        suffix: &[f64],
        depth: usize,
        acc: f64,
        chosen: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if let Some((bw, _)) = best {
            if acc + suffix[depth] <= *bw + 1e-12 {
                return; // bound: cannot beat the incumbent
            }
        }
        if depth == order.len() {
            if self.is_feasible(chosen) && best.as_ref().is_none_or(|(bw, _)| acc > *bw) {
                *best = Some((acc, chosen.clone()));
            }
            return;
        }
        // Prune on upper bounds: adding can only increase counts.
        let i = order[depth];
        chosen.push(i);
        if self.upper_ok(chosen) {
            self.bb(order, suffix, depth + 1, acc + self.weights[i], chosen, best);
        }
        chosen.pop();
        self.bb(order, suffix, depth + 1, acc, chosen, best);
    }

    fn upper_ok(&self, selected: &[usize]) -> bool {
        let mut z = vec![false; self.weights.len()];
        for &i in selected {
            z[i] = true;
        }
        self.coverage.iter().all(|rule| rule.iter().filter(|&&i| z[i]).count() <= self.upper)
    }

    fn solve_relaxation(&self) -> Option<Vec<f64>> {
        let p = self.weights.len();
        let mut lp = LinearProgram::new(self.weights.clone());
        for rule in &self.coverage {
            let mut row = vec![0.0; p];
            for &i in rule {
                row[i] = 1.0;
            }
            lp = lp.constraint(row.clone(), self.upper as f64);
            lp = lp.constraint_ge(row, self.lower.min(rule.len()) as f64);
        }
        for i in 0..p {
            let mut e = vec![0.0; p];
            e[i] = 1.0;
            lp = lp.constraint(e, 1.0);
        }
        match lp.solve() {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// Greedy feasibility repair: raise under-covered rules by adding the
    /// heaviest uncovered instances, then lower over-covered rules by
    /// dropping the lightest instances that no under-covered rule needs.
    fn repair(&self, z: &mut [bool]) {
        // Pass 1: satisfy lower bounds.
        for rule in &self.coverage {
            let count = rule.iter().filter(|&&i| z[i]).count();
            if count >= self.lower {
                continue;
            }
            let mut candidates: Vec<usize> = rule.iter().copied().filter(|&i| !z[i]).collect();
            candidates.sort_by(|&a, &b| {
                self.weights[b].partial_cmp(&self.weights[a]).expect("finite weights")
            });
            for &i in candidates.iter().take(self.lower - count) {
                z[i] = true;
            }
        }
        // Pass 2: enforce upper bounds without breaking lower bounds.
        for (j, rule) in self.coverage.iter().enumerate() {
            let mut count = rule.iter().filter(|&&i| z[i]).count();
            if count <= self.upper {
                continue;
            }
            let mut members: Vec<usize> = rule.iter().copied().filter(|&i| z[i]).collect();
            members.sort_by(|&a, &b| {
                self.weights[a].partial_cmp(&self.weights[b]).expect("finite weights")
            });
            for i in members {
                if count <= self.upper {
                    break;
                }
                // Dropping i must not push another rule below its lower bound.
                let safe = self.coverage.iter().enumerate().all(|(j2, rule2)| {
                    if j2 == j || !rule2.contains(&i) {
                        return true;
                    }
                    rule2.iter().filter(|&&x| z[x]).count() > self.lower
                });
                if safe {
                    z[i] = false;
                    count -= 1;
                }
            }
        }
    }

    fn finish(&self, z: Vec<bool>) -> SelectionSolution {
        let selected: Vec<usize> =
            z.iter().enumerate().filter_map(|(i, &s)| s.then_some(i)).collect();
        let weight = selected.iter().map(|&i| self.weights[i]).sum();
        let feasible = self.is_feasible(&selected);
        SelectionSolution { selected, weight, feasible }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 1 rule covering everything: pick the top-weight `upper` instances.
    #[test]
    fn single_rule_picks_top_weights() {
        let p =
            SelectionProblem::new(vec![1.0, 5.0, 3.0, 2.0, 4.0], vec![vec![0, 1, 2, 3, 4]], 2, 3);
        let sol = p.solve();
        assert!(sol.feasible);
        assert_eq!(sol.selected, vec![1, 2, 4]); // weights 5, 3, 4
        assert!((sol.weight - 12.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_rules_solved_independently() {
        let p = SelectionProblem::new(vec![3.0, 1.0, 9.0, 2.0], vec![vec![0, 1], vec![2, 3]], 1, 1);
        let sol = p.solve();
        assert!(sol.feasible);
        assert_eq!(sol.selected, vec![0, 2]);
    }

    #[test]
    fn overlapping_rules_share_instances() {
        // Instance 1 covers both rules; selecting it alone satisfies L=1 for
        // both and maximizes weight headroom.
        let p = SelectionProblem::new(vec![1.0, 10.0, 1.0], vec![vec![0, 1], vec![1, 2]], 1, 1);
        let sol = p.solve();
        assert!(sol.feasible);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn matches_exact_on_random_small_instances() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..30 {
            let p = 10;
            let n_rules = rng.random_range(1..4);
            let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.5..5.0)).collect();
            let coverage: Vec<Vec<usize>> = (0..n_rules)
                .map(|_| (0..p).filter(|_| rng.random::<f64>() < 0.6).collect::<Vec<_>>())
                .filter(|c: &Vec<usize>| c.len() >= 3)
                .collect();
            if coverage.is_empty() {
                continue;
            }
            let prob = SelectionProblem::new(weights, coverage, 2, 4);
            let exact = prob.solve_exact();
            let heur = prob.solve();
            match exact {
                Some(ex) => {
                    assert!(heur.feasible, "trial {trial}: heuristic infeasible");
                    // Heuristic must be close to optimal; usually equal
                    // because the LP relaxation is integral.
                    assert!(
                        heur.weight >= 0.9 * ex.weight - 1e-9,
                        "trial {trial}: heuristic {} vs exact {}",
                        heur.weight,
                        ex.weight
                    );
                }
                None => assert!(!heur.feasible, "trial {trial}: exact says infeasible"),
            }
        }
    }

    #[test]
    fn upper_clamped_to_lower() {
        let p = SelectionProblem::new(vec![1.0, 1.0, 1.0], vec![vec![0, 1, 2]], 2, 1);
        let sol = p.solve();
        assert!(sol.feasible);
        assert_eq!(sol.selected.len(), 2);
    }

    #[test]
    fn infeasible_rule_reported() {
        // Rule covers 1 instance but lower bound is 2.
        let p = SelectionProblem::new(vec![1.0, 1.0], vec![vec![0]], 2, 5);
        let sol = p.solve();
        assert!(!sol.feasible);
        // Best effort still selects the rule's only covered instance.
        assert!(sol.selected.contains(&0));
    }

    #[test]
    fn empty_problem() {
        let p = SelectionProblem::new(vec![], vec![], 1, 2);
        let sol = p.solve();
        assert!(sol.feasible);
        assert!(sol.selected.is_empty());
    }

    #[test]
    fn greedy_matches_feasibility() {
        let p = SelectionProblem::new(
            vec![2.0, 7.0, 4.0, 1.0, 6.0, 3.0],
            vec![vec![0, 1, 2], vec![3, 4, 5]],
            2,
            3,
        );
        let sol = p.solve_greedy();
        assert!(sol.feasible);
        assert!(p.is_feasible(&sol.selected));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coverage_index_panics() {
        SelectionProblem::new(vec![1.0], vec![vec![3]], 1, 1);
    }
}
