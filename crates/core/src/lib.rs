//! # frote
//!
//! FROTE — Feedback Rule-Driven Oversampling for Editing Models (Alkan et
//! al., MLSys 2022) — reproduced in Rust.
//!
//! Given an initial dataset `D`, a black-box training algorithm `A`, and a
//! conflict-free feedback rule set `F`, FROTE pre-processes and augments `D`
//! with rule-constrained SMOTE-style synthetic instances so that retraining
//! on the augmented `D̂` aligns the model with the rules (high model-rule
//! agreement) without sacrificing performance outside the rules' coverage
//! (paper Eq. 3). See `DESIGN.md` for the system inventory.
//!
//! The crate follows the paper's structure:
//!
//! - [`objective`] — the empirical objective `Ĵ` and the coverage-weighted
//!   test metric `J̄` (§3.2),
//! - [`ModStrategy`] — the `none` / `relabel` / `drop` input-dataset choices
//!   (§5.1),
//! - [`preselect`] — `PreSelectBP` with rule relaxation (Algorithm 2),
//! - [`select`] — `random` and `IP` base-instance selection (§4.1) plus the
//!   supplement's online-learning proxy,
//! - [`generate`] — rule-constrained synthetic instance generation
//!   (§4.2 + supplement A),
//! - [`Frote`] — the augmentation loop (Algorithm 1).
//!
//! # Example
//!
//! ```
//! use frote::{Frote, FroteConfig};
//! use frote_data::synth::{DatasetKind, SynthConfig};
//! use frote_ml::forest::RandomForestTrainer;
//! use frote_rules::{parse::parse_rule, FeedbackRuleSet};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
//! let rule = parse_rule("safety = high AND persons = 4 => vgood", ds.schema())?;
//! let frs = FeedbackRuleSet::new(vec![rule]);
//!
//! let config = FroteConfig { iteration_limit: 5, ..Default::default() };
//! let mut rng = StdRng::seed_from_u64(42);
//! let out = Frote::new(config).run(&ds, &RandomForestTrainer::default(), &frs, &mut rng)?;
//! assert!(out.dataset.n_rows() >= ds.n_rows());
//! # Ok::<(), frote::FroteError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod frote;
pub mod generate;
mod modstrategy;
pub mod objective;
pub mod preselect;
mod report;
pub mod select;

pub use error::FroteError;
pub use frote::{Frote, FroteBuilder, FroteConfig, FroteOutput};
pub use generate::LabelPolicy;
pub use modstrategy::ModStrategy;
pub use objective::ObjectiveWeights;
pub use report::{FroteReport, IterationRecord};
pub use select::{SelectCache, SelectionStrategy};
