//! Base-instance selection strategies (§4.1).
//!
//! - [`SelectionStrategy::Random`] — per-rule uniform sampling from the base
//!   population; "despite its simplicity ... appears to work well
//!   empirically" (§4.1).
//! - [`SelectionStrategy::Ip`] — the Eq. 5 integer program: borderline-
//!   weighted selection with per-rule bounds, solved by LP relaxation +
//!   rounding + repair (`frote-opt`), weights from Borderline-SMOTE triage
//!   against the *current model's predictions* (`frote-smote`).
//! - [`SelectionStrategy::OnlineProxy`] — the supplement's online-learning
//!   idea, simplified: a fast logistic-regression proxy of the current model
//!   scores each candidate by how far the proxy is from the rule's target
//!   class at that point (instances the proxy gets most wrong move the
//!   boundary most). The supplement found the full evaluation-based variant
//!   "too computationally intensive to be practical"; this proxy keeps the
//!   spirit at `O(|P|)` cost and is benchmarked as an ablation.

use frote_data::{Dataset, EncodedCache, FeatureMatrix};
use frote_ml::logreg::{LogRegParams, LogisticRegression};
use frote_ml::{Classifier, TrainCache};
use frote_opt::SelectionProblem;
use frote_rules::{FeedbackRuleSet, RuleMaskCache};
use frote_smote::borderline::borderline_weights;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;

use crate::preselect::BasePopulation;

/// Memoized state shared by the proxy-based strategies across the
/// augmentation loop's iterations: the incremental [`EncodedCache`] of the
/// active dataset plus the LR proxy fitted from it, keyed by the dataset's
/// row count (the loop only ever appends rows, so an unchanged count means
/// an unchanged dataset and the proxy — a deterministic function of it — is
/// reused verbatim). It also carries the loop's [`TrainCache`], so
/// histogram-mode tree trainers bin base rows once and bin codes append
/// incrementally exactly like the encoded rows do.
///
/// Must only be reused across calls that pass the *same, append-only*
/// dataset; hand each FROTE run its own cache.
#[derive(Debug, Default)]
pub struct SelectCache {
    encoded: Option<EncodedCache>,
    proxy: Option<(usize, LogisticRegression)>,
    train: TrainCache,
    rules: Option<RuleMaskCache>,
}

impl SelectCache {
    /// An empty cache (nothing fitted yet).
    pub fn new() -> Self {
        SelectCache::default()
    }

    /// The retrain-side cache handed to [`frote_ml::TrainAlgorithm::
    /// train_cached`] each time the loop (re)trains the model.
    pub fn train_cache(&mut self) -> &mut TrainCache {
        &mut self.train
    }

    /// Drops train-side cached rows past the first `rows` — called when a
    /// candidate batch is rejected, so the next candidate's rows replace
    /// the rejected ones instead of appending after them. The rule-mask
    /// plane rides along: rejected candidate rows drop out of the compiled
    /// coverage masks too. The select-side caches never see candidate rows
    /// and need no rollback.
    pub fn truncate_train(&mut self, rows: usize) {
        self.train.truncate(rows);
        if let Some(masks) = &mut self.rules {
            masks.truncate(rows);
        }
    }

    /// The compiled rule-mask plane of `frs` over `ds`, synced to the
    /// dataset's current rows (`frote_rules::RuleMaskCache` semantics: the
    /// first call evaluates every row, later calls append only the tail;
    /// rejected rows are rolled back by [`SelectCache::truncate_train`]).
    ///
    /// Like the other planes, the cache assumes every call passes the
    /// *same* rule set and the same append-only dataset.
    ///
    /// # Panics
    ///
    /// Panics if `frs` fails validation against `ds`'s schema — the loop
    /// validates the rule set before its first iteration.
    pub fn rule_masks(&mut self, frs: &FeedbackRuleSet, ds: &Dataset) -> &RuleMaskCache {
        let masks = self.rules.get_or_insert_with(|| {
            RuleMaskCache::compile(frs, ds.schema()).expect("rule set validated by the loop")
        });
        masks.sync(ds);
        masks
    }

    /// The LR proxy of `ds` together with the encoded matrix it was fitted
    /// from (matrix row `i` is the encoding of dataset row `i`) —
    /// bit-identical to `LogisticRegression::fit(ds, {max_iter: 50})` +
    /// `encode_dataset`, but base rows are encoded once and the fit itself
    /// is skipped while `ds` is unchanged.
    fn proxy_and_matrix(&mut self, ds: &Dataset) -> (&LogisticRegression, &FeatureMatrix) {
        let rows = ds.n_rows();
        if self.proxy.as_ref().is_none_or(|&(at, _)| at != rows) {
            let encoded = self.encoded.get_or_insert_with(|| EncodedCache::fit(ds));
            encoded.sync(ds);
            let model = LogisticRegression::fit_encoded(
                encoded.encoder().clone(),
                encoded.matrix(),
                ds.labels(),
                ds.n_classes(),
                &LogRegParams { max_iter: 50, ..Default::default() },
            );
            self.proxy = Some((rows, model));
        }
        let proxy = &self.proxy.as_ref().expect("just fitted").1;
        let matrix = self.encoded.as_ref().expect("fitted alongside the proxy").matrix();
        (proxy, matrix)
    }
}

/// A selected base instance: a dataset row slated to seed one synthetic
/// instance under one rule, optionally with a pinned interpolation
/// neighbour (the paper's future-work direction of selecting "the base
/// instances and their neighbors together").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseInstance {
    /// Rule index within the FRS.
    pub rule: usize,
    /// Row index within the active dataset.
    pub row: usize,
    /// Pinned neighbour row; `None` lets the generator pick one of the `k`
    /// nearest at random (the paper's default behaviour).
    pub neighbor: Option<usize>,
}

impl BaseInstance {
    /// A base instance with generator-chosen neighbour.
    pub fn new(rule: usize, row: usize) -> Self {
        BaseInstance { rule, row, neighbor: None }
    }

    /// Pins the interpolation neighbour.
    pub fn with_neighbor(mut self, neighbor: usize) -> Self {
        self.neighbor = Some(neighbor);
        self
    }
}

/// Which base-instance selection strategy Algorithm 1 uses (line 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Uniform per-rule sampling (the paper's `random`).
    #[default]
    Random,
    /// The Eq. 5 integer program (the paper's `IP`).
    Ip,
    /// Simplified online-learning proxy scoring (supplement A ablation).
    OnlineProxy,
    /// Joint base+neighbour selection (the paper's future-work direction):
    /// the LR proxy scores every (base, neighbour) pair by the proxy's
    /// confidence in the rule's target class at the pair's midpoint, and the
    /// least-confident pairs — whose synthetic offspring sit where the
    /// boundary most needs to move — are selected with the neighbour pinned.
    JointNeighbors,
}

impl SelectionStrategy {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::Random => "random",
            SelectionStrategy::Ip => "IP",
            SelectionStrategy::OnlineProxy => "online",
            SelectionStrategy::JointNeighbors => "joint",
        }
    }

    /// Selects up to `eta` base instances from the viable populations.
    ///
    /// `model` is the current model `M_D̂` — used only by `Ip` (borderline
    /// weights against its predictions). `OnlineProxy` and `JointNeighbors`
    /// score with the cached LR proxy instead; `cache` memoizes that
    /// proxy's encoded matrix and fit across iterations (see
    /// [`SelectCache`]). `Random` touches neither.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's parameter list
    pub fn select(
        self,
        ds: &Dataset,
        frs: &FeedbackRuleSet,
        bp: &BasePopulation,
        eta: usize,
        k: usize,
        model: &dyn Classifier,
        cache: &mut SelectCache,
        rng: &mut StdRng,
    ) -> Vec<BaseInstance> {
        let viable = bp.viable(k);
        if viable.is_empty() || eta == 0 {
            return Vec::new();
        }
        match self {
            SelectionStrategy::Random => random_select(bp, &viable, eta, rng),
            SelectionStrategy::Ip => ip_select(ds, bp, &viable, eta, k, model),
            SelectionStrategy::OnlineProxy => {
                let (proxy, encoded) = cache.proxy_and_matrix(ds);
                online_proxy_select(frs, bp, &viable, eta, proxy, encoded)
            }
            SelectionStrategy::JointNeighbors => {
                let (proxy, _) = cache.proxy_and_matrix(ds);
                joint_neighbor_select(ds, frs, bp, &viable, eta, k, proxy)
            }
        }
    }
}

/// Uniform per-rule sampling with replacement; the per-rule quota is
/// `eta / |viable|` (at least 1), matching the supplement's per-rule basis.
fn random_select(
    bp: &BasePopulation,
    viable: &[usize],
    eta: usize,
    rng: &mut StdRng,
) -> Vec<BaseInstance> {
    let quota = (eta / viable.len()).max(1);
    let mut out = Vec::with_capacity(quota * viable.len());
    for &r in viable {
        let members = &bp.population(r).members;
        for _ in 0..quota {
            let &row = members.choose(rng).expect("viable population is non-empty");
            out.push(BaseInstance::new(r, row));
        }
    }
    out.truncate(eta.max(viable.len()));
    out
}

/// Eq. 5: maximize borderline-weighted selection with per-rule bounds
/// `k+1 <= Σ a_ji z_i <= eta / m`.
fn ip_select(
    ds: &Dataset,
    bp: &BasePopulation,
    viable: &[usize],
    eta: usize,
    k: usize,
    model: &dyn Classifier,
) -> Vec<BaseInstance> {
    // Union of viable populations, with position maps.
    let mut union: Vec<usize> = Vec::new();
    for &r in viable {
        union.extend(&bp.population(r).members);
    }
    union.sort_unstable();
    union.dedup();
    let pos_of = |row: usize| union.binary_search(&row).expect("row in union");

    let predicted = model.predict_dataset(ds);
    let weights = borderline_weights(ds, &predicted, &union);
    let coverage: Vec<Vec<usize>> = viable
        .iter()
        .map(|&r| bp.population(r).members.iter().map(|&row| pos_of(row)).collect())
        .collect();
    let lower = k + 1;
    let upper = (eta / viable.len()).max(lower);
    let problem = SelectionProblem::new(weights, coverage, lower, upper);
    let solution = problem.solve();

    // Attribute each selected instance to the covering viable rule with the
    // fewest assignments so far (spreads generation across rules).
    let mut counts = vec![0usize; viable.len()];
    let mut out = Vec::with_capacity(solution.selected.len());
    for &pos in &solution.selected {
        let row = union[pos];
        let covering: Vec<usize> = (0..viable.len())
            .filter(|&vi| bp.population(viable[vi]).members.contains(&row))
            .collect();
        if let Some(&vi) = covering.iter().min_by_key(|&&vi| counts[vi]) {
            counts[vi] += 1;
            out.push(BaseInstance::new(viable[vi], row));
        }
    }
    out
}

/// Joint base+neighbour selection (the paper's future-work direction,
/// §7): a quick LR proxy scores each (base, neighbour) pair by the proxy's
/// confidence in the rule's target class at the pair's *midpoint* — a cheap
/// stand-in for the synthetic instance the pair would produce. Per rule, the
/// least-confident pairs are selected with the neighbour pinned, so
/// generation interpolates exactly where the boundary most needs to move.
fn joint_neighbor_select(
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    bp: &BasePopulation,
    viable: &[usize],
    eta: usize,
    k: usize,
    proxy: &LogisticRegression,
) -> Vec<BaseInstance> {
    use frote_data::Value;
    use frote_ml::distance::{MixedDistance, MixedMetric};
    use frote_ml::knn::k_nearest_of_row;

    let dist = MixedDistance::fit(ds, MixedMetric::SmoteNc);
    let quota = (eta / viable.len()).max(1);
    /// Cap on candidate bases scored per rule, keeping the pass `O(P·k)`.
    const MAX_BASES_PER_RULE: usize = 64;
    let mut out = Vec::new();
    let mut midpoint: Vec<Value> = Vec::with_capacity(ds.n_features());
    let mut encode_scratch: Vec<f64> = Vec::with_capacity(proxy.encoder().width());
    let mut probs: Vec<f64> = Vec::with_capacity(ds.n_classes());
    for &r in viable {
        let target = frs.rule(r).dist().mode() as usize;
        let members = &bp.population(r).members;
        let step = (members.len() / MAX_BASES_PER_RULE).max(1);
        let mut scored: Vec<(f64, usize, usize)> = Vec::new();
        for &row in members.iter().step_by(step) {
            for n in k_nearest_of_row(ds, row, members, k, &dist) {
                midpoint.clear();
                midpoint.extend((0..ds.n_features()).map(|j| {
                    match (ds.cell(row, j), ds.cell(n.index, j)) {
                        (Value::Num(a), Value::Num(b)) => Value::Num(0.5 * (a + b)),
                        (cell, _) => cell, // categorical: the base's value
                    }
                }));
                proxy.predict_proba_scratch(&midpoint, &mut encode_scratch, &mut probs);
                scored.push((probs.get(target).copied().unwrap_or(0.0), row, n.index));
            }
        }
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite probabilities")
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        for &(_, row, neighbor) in scored.iter().take(quota) {
            out.push(BaseInstance::new(r, row).with_neighbor(neighbor));
        }
    }
    out
}

/// Supplement-A-inspired proxy scoring: train a quick LR proxy on the active
/// dataset's labels, then pick, per rule, the candidates where the proxy
/// assigns the *lowest* probability to the rule's target class.
fn online_proxy_select(
    frs: &FeedbackRuleSet,
    bp: &BasePopulation,
    viable: &[usize],
    eta: usize,
    proxy: &LogisticRegression,
    encoded: &FeatureMatrix,
) -> Vec<BaseInstance> {
    let quota = (eta / viable.len()).max(1);
    let mut out = Vec::new();
    let mut probs = Vec::with_capacity(proxy.n_classes());
    for &r in viable {
        let target = frs.rule(r).dist().mode();
        let members = &bp.population(r).members;
        // Members score straight off the cached encoded matrix: no per-row
        // materialization or re-encode.
        let mut scored: Vec<(f64, usize)> = members
            .iter()
            .map(|&i| {
                proxy.predict_proba_encoded(encoded.row(i), &mut probs);
                (probs.get(target as usize).copied().unwrap_or(0.0), i)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite probabilities"));
        for &(_, row) in scored.iter().take(quota) {
            out.push(BaseInstance::new(r, row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};
    use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};
    use rand::SeedableRng;

    struct Stub;
    impl Classifier for Stub {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
            out.clear();
            if row[0].expect_num() >= 10.0 {
                out.extend_from_slice(&[0.0, 1.0]);
            } else {
                out.extend_from_slice(&[1.0, 0.0]);
            }
        }
    }

    fn ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..20 {
            d.push_row(&[Value::Num(i as f64)], u32::from(i >= 10)).unwrap();
        }
        d
    }

    fn frs() -> FeedbackRuleSet {
        FeedbackRuleSet::new(vec![
            FeedbackRule::new(
                Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(10.0))]),
                LabelDist::Deterministic(1),
            ),
            FeedbackRule::new(
                Clause::new(vec![Predicate::new(0, Op::Ge, Value::Num(10.0))]),
                LabelDist::Deterministic(0),
            ),
        ])
    }

    fn setup() -> (Dataset, FeedbackRuleSet, BasePopulation) {
        let d = ds();
        let f = frs();
        let bp = BasePopulation::pre_select(&d, &f, 5);
        (d, f, bp)
    }

    #[test]
    fn random_respects_populations_and_quota() {
        let (d, f, bp) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let sel = SelectionStrategy::Random.select(
            &d,
            &f,
            &bp,
            8,
            5,
            &Stub,
            &mut SelectCache::new(),
            &mut rng,
        );
        assert_eq!(sel.len(), 8);
        for b in &sel {
            assert!(bp.population(b.rule).members.contains(&b.row));
        }
        // Both rules are represented.
        assert!(sel.iter().any(|b| b.rule == 0));
        assert!(sel.iter().any(|b| b.rule == 1));
    }

    #[test]
    fn ip_selects_feasible_rule_coverage() {
        let (d, f, bp) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let sel = SelectionStrategy::Ip.select(
            &d,
            &f,
            &bp,
            16,
            5,
            &Stub,
            &mut SelectCache::new(),
            &mut rng,
        );
        assert!(!sel.is_empty());
        for b in &sel {
            assert!(bp.population(b.rule).members.contains(&b.row));
        }
        // Each rule contributed at least k+1 = 6 instances per the IP's
        // lower bound (they are attributed across rules, so check totals).
        let r0 = sel.iter().filter(|b| b.rule == 0).count();
        let r1 = sel.iter().filter(|b| b.rule == 1).count();
        assert!(r0 + r1 >= 12, "r0 {r0} r1 {r1}");
    }

    #[test]
    fn online_proxy_prefers_hard_candidates() {
        let (d, f, bp) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let sel = SelectionStrategy::OnlineProxy.select(
            &d,
            &f,
            &bp,
            6,
            5,
            &Stub,
            &mut SelectCache::new(),
            &mut rng,
        );
        assert!(!sel.is_empty());
        for b in &sel {
            assert!(bp.population(b.rule).members.contains(&b.row));
        }
    }

    #[test]
    fn zero_eta_or_no_viable_rules() {
        let (d, f, bp) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(SelectionStrategy::Random
            .select(&d, &f, &bp, 0, 5, &Stub, &mut SelectCache::new(), &mut rng)
            .is_empty());
        // k too large -> nothing viable.
        let bp_small = BasePopulation::pre_select(&d, &f, 50);
        assert!(SelectionStrategy::Random
            .select(&d, &f, &bp_small, 10, 50, &Stub, &mut SelectCache::new(), &mut rng)
            .is_empty());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SelectionStrategy::Random.name(), "random");
        assert_eq!(SelectionStrategy::Ip.name(), "IP");
        assert_eq!(SelectionStrategy::OnlineProxy.name(), "online");
        assert_eq!(SelectionStrategy::JointNeighbors.name(), "joint");
    }

    #[test]
    fn joint_neighbors_pins_valid_pairs() {
        let (d, f, bp) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let sel = SelectionStrategy::JointNeighbors.select(
            &d,
            &f,
            &bp,
            6,
            5,
            &Stub,
            &mut SelectCache::new(),
            &mut rng,
        );
        assert!(!sel.is_empty());
        for b in &sel {
            let members = &bp.population(b.rule).members;
            assert!(members.contains(&b.row));
            let n = b.neighbor.expect("joint selection pins neighbours");
            assert!(members.contains(&n), "neighbour outside the rule population");
            assert_ne!(n, b.row, "neighbour must differ from the base");
        }
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let (d, f, bp) = setup();
        let a = SelectionStrategy::Random.select(
            &d,
            &f,
            &bp,
            8,
            5,
            &Stub,
            &mut SelectCache::new(),
            &mut StdRng::seed_from_u64(3),
        );
        let b = SelectionStrategy::Random.select(
            &d,
            &f,
            &bp,
            8,
            5,
            &Stub,
            &mut SelectCache::new(),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }
}
