//! Input-dataset modification strategies (§5.1 "Input dataset choices").

use frote_data::Dataset;
use frote_rules::FeedbackRuleSet;

/// What to do with existing instances that contradict the feedback rules
/// before augmentation starts.
///
/// The paper notes `relabel` and `drop` "may not be possible if the user is
/// reluctant to make changes to the existing dataset for various data
/// integrity reasons"; `relabel` is the default used in most experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModStrategy {
    /// Leave the dataset untouched.
    None,
    /// Relabel covered instances whose label disagrees with their covering
    /// rule to that rule's (most likely) class.
    #[default]
    Relabel,
    /// Drop covered instances whose label disagrees with their covering rule.
    Drop,
}

impl ModStrategy {
    /// Display name matching the paper's plots (`none` / `relabel` / `drop`).
    pub fn name(self) -> &'static str {
        match self {
            ModStrategy::None => "none",
            ModStrategy::Relabel => "relabel",
            ModStrategy::Drop => "drop",
        }
    }

    /// Applies the strategy, returning the modified dataset.
    ///
    /// Rule attribution is first-match (disjoint effective coverage). For
    /// probabilistic rules, "disagrees" means the instance's label has zero
    /// probability under the rule; relabelling assigns the rule's mode.
    pub fn apply(self, ds: &Dataset, frs: &FeedbackRuleSet) -> Dataset {
        match self {
            ModStrategy::None => ds.clone(),
            ModStrategy::Relabel => {
                let mut out = ds.clone();
                for (r, rows) in frs.attributed_coverage(ds).iter().enumerate() {
                    let rule = frs.rule(r);
                    for &i in rows {
                        if !rule.label_agrees(ds.label(i)) {
                            out.set_label(i, rule.dist().mode())
                                .expect("rule classes validated against schema");
                        }
                    }
                }
                out
            }
            ModStrategy::Drop => {
                let mut keep = vec![true; ds.n_rows()];
                for (r, rows) in frs.attributed_coverage(ds).iter().enumerate() {
                    let rule = frs.rule(r);
                    for &i in rows {
                        if !rule.label_agrees(ds.label(i)) {
                            keep[i] = false;
                        }
                    }
                }
                let kept: Vec<usize> =
                    keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)).collect();
                ds.gather(&kept)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};
    use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};

    fn ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..6 {
            d.push_row(&[Value::Num(i as f64)], u32::from(i % 2 == 0)).unwrap();
        }
        d
    }

    fn frs() -> FeedbackRuleSet {
        // x < 3 -> class 1 (rows 0,1,2; labels 1,0,1 -> row 1 disagrees... )
        // labels: i%2==0 -> 1? u32::from(i%2==0): i=0 ->1, 1->0, 2->1.
        FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(3.0))]),
            LabelDist::Deterministic(1),
        )])
    }

    #[test]
    fn none_is_identity() {
        let d = ds();
        assert_eq!(ModStrategy::None.apply(&d, &frs()), d);
    }

    #[test]
    fn relabel_fixes_disagreements_only() {
        let d = ds();
        let out = ModStrategy::Relabel.apply(&d, &frs());
        assert_eq!(out.n_rows(), 6);
        // Covered rows 0,1,2 now all class 1.
        assert_eq!(out.label(0), 1);
        assert_eq!(out.label(1), 1); // was 0, relabelled
        assert_eq!(out.label(2), 1);
        // Outside coverage untouched.
        assert_eq!(out.label(3), d.label(3));
        assert_eq!(out.label(5), d.label(5));
    }

    #[test]
    fn drop_removes_disagreements_only() {
        let d = ds();
        let out = ModStrategy::Drop.apply(&d, &frs());
        assert_eq!(out.n_rows(), 5); // row 1 dropped
                                     // Remaining covered rows agree with the rule.
        for i in 0..out.n_rows() {
            if out.value(i, 0).expect_num() < 3.0 {
                assert_eq!(out.label(i), 1);
            }
        }
    }

    #[test]
    fn probabilistic_rule_agreement_keeps_positive_mass_labels() {
        let d = ds();
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(3.0))]),
            LabelDist::probabilistic(vec![0.3, 0.7]).unwrap(),
        )]);
        // Both labels have positive probability -> nothing to fix.
        assert_eq!(ModStrategy::Relabel.apply(&d, &frs), d);
        assert_eq!(ModStrategy::Drop.apply(&d, &frs).n_rows(), 6);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModStrategy::None.name(), "none");
        assert_eq!(ModStrategy::Relabel.name(), "relabel");
        assert_eq!(ModStrategy::Drop.name(), "drop");
    }
}
