//! Rule-constrained synthetic instance generation (§4.2 + supplement A).
//!
//! FROTE's generator differs from SMOTE in three ways (paper §4.2):
//!
//! 1. neighbours are found among instances satisfying the *same feedback
//!    rule* (possibly relaxed) rather than the same class,
//! 2. the generated instance must satisfy the conditions of the **original,
//!    unrelaxed** rule — numeric features constrained by `>`, `>=`, `<`, `<=`
//!    conditions are generated inside a min/max window tightened by the base
//!    and neighbour values; `=` conditions assign directly; categorical
//!    features take the most frequent neighbour value that passes every
//!    condition,
//! 3. the class label is sampled from the rule's distribution `π` instead of
//!    copied from the base instance.

use frote_data::stats::DatasetStats;
use frote_data::{Dataset, FeatureKind, Value};
use frote_ml::distance::{MixedDistance, MixedMetric};
use frote_ml::knn::k_nearest_of_row;
use frote_par::SeedSplit;
use frote_rules::{Clause, FeedbackRuleSet, Op};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::preselect::BasePopulation;
use crate::select::BaseInstance;

/// How generated instances are labelled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LabelPolicy {
    /// Sample from the rule's distribution `π` (the paper's default; exact
    /// assignment for deterministic rules).
    #[default]
    FromRule,
    /// The supplement's probabilistic-rule experiment (Table 6): with
    /// probability `p` the label is the rule's class `c`; otherwise it is the
    /// base instance's label, except when that label is `c`, in which case it
    /// is drawn uniformly from the other classes.
    Calibrated {
        /// Confidence in the expert rule.
        p: f64,
    },
}

/// The FROTE synthetic instance generator bound to one active dataset.
pub struct Generator<'a> {
    ds: &'a Dataset,
    frs: &'a FeedbackRuleSet,
    bp: &'a BasePopulation,
    k: usize,
    policy: LabelPolicy,
    dist: MixedDistance,
    stats: DatasetStats,
}

impl<'a> Generator<'a> {
    /// Creates a generator over the active dataset `ds`.
    pub fn new(
        ds: &'a Dataset,
        frs: &'a FeedbackRuleSet,
        bp: &'a BasePopulation,
        k: usize,
        policy: LabelPolicy,
    ) -> Self {
        Generator {
            ds,
            frs,
            bp,
            k,
            policy,
            dist: MixedDistance::fit(ds, MixedMetric::SmoteNc),
            stats: DatasetStats::of(ds),
        }
    }

    /// Generates one synthetic instance per base instance (`Generate(B)` in
    /// Algorithm 1). Base instances whose population cannot supply a
    /// neighbour are skipped.
    ///
    /// Instances are generated in parallel across `frote_par::threads()`
    /// threads; each base instance draws from its own RNG stream (derived
    /// from one draw of `rng`), so the batch is bit-identical at any thread
    /// count.
    pub fn generate(&self, base: &[BaseInstance], rng: &mut StdRng) -> Dataset {
        let split = SeedSplit::from_rng(rng);
        let tasks: Vec<(u64, BaseInstance)> =
            base.iter().copied().enumerate().map(|(t, b)| (t as u64, b)).collect();
        let rows = frote_par::par_map(&tasks, |&(t, ref b)| {
            let mut rng = split.stream(t);
            self.generate_for(b, &mut rng)
        });
        let mut out = Dataset::with_shared_schema(self.ds.schema_handle());
        for (row, label) in rows.into_iter().flatten() {
            out.push_row(&row, label).expect("generated row matches schema");
        }
        out
    }

    /// Generates a single instance for base row `row` under rule `rule`.
    pub fn generate_one(
        &self,
        rule: usize,
        row: usize,
        rng: &mut StdRng,
    ) -> Option<(Vec<Value>, u32)> {
        self.generate_for(&BaseInstance::new(rule, row), rng)
    }

    /// Generates a single instance for `base`, honouring a pinned neighbour
    /// when present.
    pub fn generate_for(&self, base: &BaseInstance, rng: &mut StdRng) -> Option<(Vec<Value>, u32)> {
        let (rule, row) = (base.rule, base.row);
        let members = &self.bp.population(rule).members;
        let neighbors = k_nearest_of_row(self.ds, row, members, self.k, &self.dist);
        if neighbors.is_empty() {
            return None;
        }
        let neighbor = match base.neighbor {
            Some(n) => n,
            None => neighbors.choose(rng).expect("non-empty neighbours").index,
        };
        let clause = self.frs.rule(rule).clause();
        let mut values = Vec::with_capacity(self.ds.n_features());
        for j in 0..self.ds.n_features() {
            let v = match self.ds.schema().feature(j).kind() {
                FeatureKind::Numeric => {
                    Value::Num(self.numeric_value(j, row, neighbor, clause, rng))
                }
                FeatureKind::Categorical { categories } => Value::Cat(self.categorical_value(
                    j,
                    &neighbors.iter().map(|n| n.index).collect::<Vec<_>>(),
                    clause,
                    categories.len(),
                )),
            };
            values.push(v);
        }
        debug_assert!(
            clause.satisfied_by(&values),
            "generated instance violates its rule: {clause} on {values:?}"
        );
        let label = self.label(rule, row, rng);
        Some((values, label))
    }

    /// Numeric feature: interpolate base/neighbour, respecting any window
    /// implied by the original rule's conditions (supplement A).
    fn numeric_value(
        &self,
        feature: usize,
        base: usize,
        neighbor: usize,
        clause: &Clause,
        rng: &mut StdRng,
    ) -> f64 {
        let window = Window::from_clause(clause, feature);
        if let Some(eq) = window.eq {
            return eq;
        }
        let a = self.ds.value(base, feature).expect_num();
        let b = self.ds.value(neighbor, feature).expect_num();
        let w: f64 = rng.random::<f64>();
        let candidate = a + (b - a) * w;
        if window.contains(candidate) {
            return candidate;
        }
        // Base/neighbour lie (partly) outside the window — the rule was
        // relaxed. Sample inside the intersection of the window and the
        // column's observed range where possible.
        let stats = self.stats.numeric(feature).expect("numeric column has stats");
        let data_lo = stats.min.min(a.min(b));
        let data_hi = stats.max.max(a.max(b));
        let wlo = window.sample_lo();
        let whi = window.sample_hi();
        let lo = wlo.max(data_lo);
        let hi = whi.min(data_hi);
        if lo < hi {
            return rng.random_range(lo..hi);
        }
        // The data lies entirely outside the window (the paper's
        // Figure 1(c): no existing instances in the region to adjust).
        // Extrapolate: sample a band one standard deviation wide just inside
        // the window on the side nearest the data, so synthetic instances
        // spread out rather than clumping at the boundary.
        let spread = if stats.std > 0.0 { stats.std } else { 1.0 };
        if whi.is_finite() && data_lo >= whi {
            // Data sits above the window: fill (whi - spread, whi].
            let band_lo = (whi - spread).max(wlo);
            return rng.random_range(band_lo..whi);
        }
        if wlo.is_finite() && data_hi <= wlo {
            // Data sits below the window: fill [wlo, wlo + spread).
            let band_hi = (wlo + spread).min(whi);
            return rng.random_range(wlo..band_hi);
        }
        // Window bounded on both sides with no data inside: sample it whole.
        if wlo.is_finite() && whi.is_finite() && wlo < whi {
            return rng.random_range(wlo..whi);
        }
        // Degenerate point window.
        0.5 * (wlo.max(data_lo) + whi.min(data_hi))
    }

    /// Categorical feature: most frequent neighbour value satisfying every
    /// condition; if none qualifies, the smallest vocabulary value that does.
    fn categorical_value(
        &self,
        feature: usize,
        neighbor_rows: &[usize],
        clause: &Clause,
        cardinality: usize,
    ) -> u32 {
        let conds: Vec<_> = clause.predicates().iter().filter(|p| p.feature() == feature).collect();
        let ok = |c: u32| conds.iter().all(|p| p.eval(Value::Cat(c)));
        // Equality condition pins the value outright.
        if let Some(p) = conds.iter().find(|p| p.op() == Op::Eq) {
            return p.value().expect_cat();
        }
        // Frequency-ordered neighbour values (ties to the lowest category).
        let mut counts = vec![0usize; cardinality];
        for &i in neighbor_rows {
            counts[self.ds.value(i, feature).expect_cat() as usize] += 1;
        }
        let mut order: Vec<u32> = (0..cardinality as u32).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(counts[c as usize]));
        for c in order {
            if counts[c as usize] > 0 && ok(c) {
                return c;
            }
        }
        (0..cardinality as u32).find(|&c| ok(c)).unwrap_or(0)
    }

    fn label(&self, rule: usize, base_row: usize, rng: &mut StdRng) -> u32 {
        let dist = self.frs.rule(rule).dist();
        match self.policy {
            LabelPolicy::FromRule => dist.sample(rng),
            LabelPolicy::Calibrated { p } => {
                let c = dist.mode();
                if rng.random::<f64>() < p {
                    c
                } else {
                    let base_label = self.ds.label(base_row);
                    if base_label != c {
                        base_label
                    } else {
                        let n = self.ds.n_classes() as u32;
                        if n <= 1 {
                            c
                        } else {
                            let offset = rng.random_range(1..n);
                            (c + offset) % n
                        }
                    }
                }
            }
        }
    }
}

/// A per-feature numeric window implied by rule conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    lo: Option<(f64, bool)>, // (bound, strict)
    hi: Option<(f64, bool)>,
    eq: Option<f64>,
}

impl Window {
    fn from_clause(clause: &Clause, feature: usize) -> Window {
        let mut w = Window { lo: None, hi: None, eq: None };
        for p in clause.predicates().iter().filter(|p| p.feature() == feature) {
            let v = p.value().expect_num();
            match p.op() {
                Op::Eq => w.eq = Some(v),
                Op::Gt => w.raise_lo(v, true),
                Op::Ge => w.raise_lo(v, false),
                Op::Lt => w.lower_hi(v, true),
                Op::Le => w.lower_hi(v, false),
                Op::Ne => {} // not legal on numeric features
            }
        }
        w
    }

    fn raise_lo(&mut self, v: f64, strict: bool) {
        match self.lo {
            Some((cur, cur_strict)) if v < cur || (v == cur && cur_strict) => {
                let _ = cur_strict;
            }
            _ => self.lo = Some((v, strict)),
        }
    }

    fn lower_hi(&mut self, v: f64, strict: bool) {
        match self.hi {
            Some((cur, cur_strict)) if v > cur || (v == cur && cur_strict) => {
                let _ = cur_strict;
            }
            _ => self.hi = Some((v, strict)),
        }
    }

    fn contains(&self, x: f64) -> bool {
        if let Some(eq) = self.eq {
            return x == eq;
        }
        let lo_ok = match self.lo {
            None => true,
            Some((v, true)) => x > v,
            Some((v, false)) => x >= v,
        };
        let hi_ok = match self.hi {
            None => true,
            Some((v, true)) => x < v,
            Some((v, false)) => x <= v,
        };
        lo_ok && hi_ok
    }

    /// The window's sampling lower bound (strict bounds nudged inward);
    /// `-inf` when unbounded below.
    fn sample_lo(&self) -> f64 {
        match self.lo {
            None => f64::NEG_INFINITY,
            Some((v, strict)) => {
                if strict {
                    v + eps_for(v)
                } else {
                    v
                }
            }
        }
    }

    /// The window's sampling upper bound; `+inf` when unbounded above.
    fn sample_hi(&self) -> f64 {
        match self.hi {
            None => f64::INFINITY,
            Some((v, strict)) => {
                if strict {
                    v - eps_for(v)
                } else {
                    v
                }
            }
        }
    }
}

fn eps_for(v: f64) -> f64 {
    1e-9 * v.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preselect::BasePopulation;
    use frote_data::{Schema, Value};
    use frote_rules::{FeedbackRule, LabelDist, Predicate};
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into(), "r".into()])
            .build()
    }

    /// x uniform-ish over 0..30, k cycles p,q,r.
    fn ds() -> Dataset {
        let mut d = Dataset::new(schema());
        for i in 0..30 {
            d.push_row(&[Value::Num(i as f64), Value::Cat((i % 3) as u32)], (i % 3) as u32)
                .unwrap();
        }
        d
    }

    fn frs(preds: Vec<Predicate>, class: u32) -> FeedbackRuleSet {
        FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(preds),
            LabelDist::Deterministic(class),
        )])
    }

    fn generate_many(d: &Dataset, frs: &FeedbackRuleSet, n: usize, policy: LabelPolicy) -> Dataset {
        let bp = BasePopulation::pre_select(d, frs, 5);
        let gen = Generator::new(d, frs, &bp, 5, policy);
        let mut rng = StdRng::seed_from_u64(42);
        let members = &bp.population(0).members;
        let base: Vec<BaseInstance> =
            (0..n).map(|t| BaseInstance::new(0, members[t % members.len()])).collect();
        gen.generate(&base, &mut rng)
    }

    #[test]
    fn generated_instances_satisfy_unrelaxed_rule() {
        let d = ds();
        // Narrow rule on both features; relaxation will widen the BP but the
        // generated instances must still satisfy the ORIGINAL conditions.
        let f = frs(
            vec![
                Predicate::new(0, Op::Ge, Value::Num(25.0)),
                Predicate::new(1, Op::Eq, Value::Cat(2)),
            ],
            1,
        );
        let out = generate_many(&d, &f, 50, LabelPolicy::FromRule);
        assert_eq!(out.n_rows(), 50);
        let clause = f.rule(0).clause();
        for i in 0..out.n_rows() {
            assert!(clause.satisfied_by(&out.row(i)), "row {i} violates rule");
            assert_eq!(out.label(i), 1);
        }
    }

    #[test]
    fn window_with_upper_and_lower_bounds() {
        let d = ds();
        let f = frs(
            vec![
                Predicate::new(0, Op::Gt, Value::Num(10.0)),
                Predicate::new(0, Op::Le, Value::Num(20.0)),
            ],
            2,
        );
        let out = generate_many(&d, &f, 80, LabelPolicy::FromRule);
        for i in 0..out.n_rows() {
            let x = out.value(i, 0).expect_num();
            assert!(x > 10.0 && x <= 20.0, "x = {x}");
        }
    }

    #[test]
    fn numeric_equality_condition_assigns_exactly() {
        let d = ds();
        let f = frs(vec![Predicate::new(0, Op::Eq, Value::Num(7.0))], 0);
        let out = generate_many(&d, &f, 20, LabelPolicy::FromRule);
        for i in 0..out.n_rows() {
            assert_eq!(out.value(i, 0), Value::Num(7.0));
        }
    }

    #[test]
    fn categorical_ne_condition_respected() {
        let d = ds();
        let f = frs(vec![Predicate::new(1, Op::Ne, Value::Cat(0))], 1);
        let out = generate_many(&d, &f, 40, LabelPolicy::FromRule);
        for i in 0..out.n_rows() {
            assert_ne!(out.value(i, 1).expect_cat(), 0);
        }
    }

    #[test]
    fn probabilistic_rule_labels_follow_pi() {
        let d = ds();
        let f = FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(20.0))]),
            LabelDist::probabilistic(vec![0.1, 0.8, 0.1]).unwrap(),
        )]);
        let out = generate_many(&d, &f, 300, LabelPolicy::FromRule);
        let ones = out.labels().iter().filter(|&&l| l == 1).count();
        let frac = ones as f64 / out.n_rows() as f64;
        assert!((frac - 0.8).abs() < 0.1, "frac {frac}");
    }

    #[test]
    fn calibrated_policy_mixes_rule_and_base_labels() {
        let d = ds();
        let f = frs(vec![Predicate::new(0, Op::Lt, Value::Num(20.0))], 1);
        // p = 0: the label never comes from the rule; base labels 1 are
        // remapped away from c=1.
        let out = generate_many(&d, &f, 200, LabelPolicy::Calibrated { p: 0.0 });
        // Labels can be 0, 1 or 2? No: base label 1 is remapped to 0 or 2.
        // Labels equal to 1 can only appear via remap of... never.
        assert!(out.labels().iter().all(|&l| l != 1), "{:?}", out.class_counts());
        // p = 1: always the rule class.
        let out = generate_many(&d, &f, 50, LabelPolicy::Calibrated { p: 1.0 });
        assert!(out.labels().iter().all(|&l| l == 1));
    }

    #[test]
    fn interpolation_stays_between_parents_when_unconstrained() {
        let d = ds();
        let f = frs(vec![Predicate::new(1, Op::Eq, Value::Cat(0))], 0);
        let out = generate_many(&d, &f, 100, LabelPolicy::FromRule);
        // x unconstrained: all values must lie within the population's hull.
        for i in 0..out.n_rows() {
            let x = out.value(i, 0).expect_num();
            assert!((0.0..=29.0).contains(&x));
        }
    }

    #[test]
    fn window_helpers() {
        let c = Clause::new(vec![
            Predicate::new(0, Op::Gt, Value::Num(1.0)),
            Predicate::new(0, Op::Lt, Value::Num(5.0)),
        ]);
        let w = Window::from_clause(&c, 0);
        assert!(w.contains(3.0));
        assert!(!w.contains(1.0));
        assert!(!w.contains(5.0));
        assert!(w.sample_lo() > 1.0);
        assert!(w.sample_hi() < 5.0);
        // Tighter of two bounds wins.
        let c = Clause::new(vec![
            Predicate::new(0, Op::Ge, Value::Num(1.0)),
            Predicate::new(0, Op::Gt, Value::Num(2.0)),
        ]);
        let w = Window::from_clause(&c, 0);
        assert!(!w.contains(2.0));
        assert!(w.contains(2.5));
    }
}
