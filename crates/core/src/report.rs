//! Augmentation progress reporting (feeds the paper's Figure 9).

use crate::objective::ObjectiveValue;

/// One Algorithm 1 iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index `i` (0-based).
    pub iteration: usize,
    /// Whether the candidate dataset was accepted (`j' < ĵ`).
    pub accepted: bool,
    /// Number of synthetic instances proposed this iteration.
    pub proposed: usize,
    /// The candidate objective (complement form, higher is better).
    pub candidate: ObjectiveValue,
    /// Cumulative synthetic instances in the active dataset after this
    /// iteration.
    pub total_added: usize,
}

/// Full progress trace of a FROTE run.
#[derive(Debug, Clone, PartialEq)]
pub struct FroteReport {
    /// Objective of the model trained on the (modified) input dataset.
    pub initial: ObjectiveValue,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Objective of the final model on the final active dataset.
    pub final_objective: ObjectiveValue,
    /// Total synthetic instances in the output dataset.
    pub instances_added: usize,
}

impl FroteReport {
    /// Number of iterations run.
    pub fn n_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Number of accepted iterations.
    pub fn n_accepted(&self) -> usize {
        self.iterations.iter().filter(|r| r.accepted).count()
    }

    /// Improvement in the combined objective (final − initial).
    pub fn improvement(&self) -> f64 {
        self.final_objective.j - self.initial.j
    }

    /// The `(total_added, objective)` series for augmentation-progress plots
    /// (paper Figure 9): one point per accepted iteration, starting at
    /// `(0, initial)`.
    pub fn progress_series(&self) -> Vec<(usize, f64)> {
        let mut out = vec![(0, self.initial.j)];
        for r in self.iterations.iter().filter(|r| r.accepted) {
            out.push((r.total_added, r.candidate.j));
        }
        out
    }

    /// A human-readable run summary for examples and logs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FROTE run: {} iterations, {} accepted, {} instances added",
            self.n_iterations(),
            self.n_accepted(),
            self.instances_added
        );
        let _ = writeln!(
            out,
            "  objective: {:.3} -> {:.3} (MRA {:.3} -> {:.3}, F1 {:.3} -> {:.3})",
            self.initial.j,
            self.final_objective.j,
            self.initial.mra,
            self.final_objective.mra,
            self.initial.f1,
            self.final_objective.f1
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(j: f64) -> ObjectiveValue {
        ObjectiveValue { mra: j, f1: j, j }
    }

    fn record(i: usize, accepted: bool, j: f64, total: usize) -> IterationRecord {
        IterationRecord {
            iteration: i,
            accepted,
            proposed: 10,
            candidate: obj(j),
            total_added: total,
        }
    }

    #[test]
    fn counts_and_improvement() {
        let report = FroteReport {
            initial: obj(0.5),
            iterations: vec![
                record(0, true, 0.6, 10),
                record(1, false, 0.55, 10),
                record(2, true, 0.7, 20),
            ],
            final_objective: obj(0.7),
            instances_added: 20,
        };
        assert_eq!(report.n_iterations(), 3);
        assert_eq!(report.n_accepted(), 2);
        assert!((report.improvement() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_counts_and_objectives() {
        let report = FroteReport {
            initial: obj(0.5),
            iterations: vec![record(0, true, 0.6, 10)],
            final_objective: obj(0.6),
            instances_added: 10,
        };
        let text = report.render();
        assert!(text.contains("1 iterations, 1 accepted, 10 instances added"));
        assert!(text.contains("0.500 -> 0.600"));
    }

    #[test]
    fn progress_series_includes_initial_point() {
        let report = FroteReport {
            initial: obj(0.5),
            iterations: vec![record(0, true, 0.6, 10), record(1, false, 0.4, 10)],
            final_objective: obj(0.6),
            instances_added: 10,
        };
        assert_eq!(report.progress_series(), vec![(0, 0.5), (10, 0.6)]);
    }
}
