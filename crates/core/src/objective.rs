//! The paper's objective: MRA, outside-coverage F1, `Ĵ` and `J̄`.
//!
//! The true objective (paper Eq. 3) weights each rule's disagreement by its
//! coverage probability and adds the outside-coverage loss. Two estimators
//! are provided:
//!
//! - [`empirical_j`] — the `Ĵ` used *inside* the augmentation loop: a plain
//!   `0.5·MRA + 0.5·F1` combination evaluated on the current active dataset
//!   (§5.1: "we simply use a 0.5-0.5 weighting ... because the test set
//!   coverage probabilities are not known to FROTE"). Returned as the
//!   *complement* `J̄ = 1 − J`; FROTE minimizes the loss, reports the
//!   complement.
//! - [`paper_j`] — the held-out-test metric of the figures/tables: MRA terms
//!   weighted by empirical rule-coverage probabilities, plus the F1 term
//!   weighted by the outside-coverage probability.

use frote_data::Dataset;
use frote_ml::{metrics, Classifier};
use frote_rules::{FeedbackRuleSet, RuleMaskCache};

/// Weights of the internal `Ĵ` combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight on the model-rule-agreement term.
    pub mra: f64,
    /// Weight on the outside-coverage F1 term.
    pub f1: f64,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        ObjectiveWeights { mra: 0.5, f1: 0.5 }
    }
}

/// The two components of an objective evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveValue {
    /// Model-rule agreement over the rules' (first-match) coverage; 1.0 when
    /// the coverage is empty.
    pub mra: f64,
    /// Macro-F1 over the outside-coverage population; 1.0 when empty.
    pub f1: f64,
    /// The combined complement `J̄` (higher is better).
    pub j: f64,
}

/// Model-rule agreement of `model` over the covered rows of `ds`, or `None`
/// when nothing is covered.
///
/// Uses first-match rule attribution (disjoint effective coverages, §3.2).
/// For a deterministic rule the agreement of a covered row is
/// `1{prediction == class}`; for a probabilistic rule it is the probability
/// `π(prediction)` — the expectation of the 0-1 agreement under `Y ~ π`.
pub fn mra_opt(model: &dyn Classifier, ds: &Dataset, frs: &FeedbackRuleSet) -> Option<f64> {
    mra_from_attributed(model, ds, frs, &frs.attributed_coverage(ds))
}

/// [`mra_opt`] reading the first-match attribution from an already-synced
/// [`RuleMaskCache`] instead of re-scanning every rule — the loop-side fast
/// path. Values are identical to [`mra_opt`] for a cache compiled from
/// `frs` and synced to `ds`.
///
/// # Panics
///
/// Panics if the cache's synced row count differs from `ds.n_rows()`.
pub fn mra_opt_masked(
    model: &dyn Classifier,
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    masks: &RuleMaskCache,
) -> Option<f64> {
    assert_eq!(masks.rows(), ds.n_rows(), "rule-mask cache is out of sync with the dataset");
    mra_from_attributed(model, ds, frs, &masks.attributed_coverage())
}

/// The shared MRA arithmetic over a first-match attribution.
fn mra_from_attributed(
    model: &dyn Classifier,
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    attributed: &[Vec<usize>],
) -> Option<f64> {
    let mut total = 0usize;
    let mut agreement = 0.0;
    for (r, rows) in attributed.iter().enumerate() {
        let rule = frs.rule(r);
        // Batch-predict the rule's coverage in one parallel pass.
        let preds = model.predict_rows(ds, rows);
        for pred in preds {
            agreement += rule.dist().prob(pred);
            total += 1;
        }
    }
    (total > 0).then(|| agreement / total as f64)
}

/// [`mra_opt`] with empty coverage scored as 1.0 (vacuous truth) — the
/// held-out-test reading, where an uncovered test set contributes no MRA
/// mass to the coverage-weighted `J̄`.
pub fn mra(model: &dyn Classifier, ds: &Dataset, frs: &FeedbackRuleSet) -> f64 {
    mra_opt(model, ds, frs).unwrap_or(1.0)
}

/// Macro-F1 of `model` over the rows of `ds` *outside* the rules' coverage,
/// against the dataset's own labels. Returns 1.0 when empty.
pub fn outside_f1(model: &dyn Classifier, ds: &Dataset, frs: &FeedbackRuleSet) -> f64 {
    f1_over_rows(model, ds, &frs.outside_coverage(ds))
}

/// [`outside_f1`] reading the outside-coverage rows from an already-synced
/// [`RuleMaskCache`] (complement of the union mask, via popcount-friendly
/// words) instead of re-scanning every rule.
///
/// # Panics
///
/// Panics if the cache's synced row count differs from `ds.n_rows()`.
pub fn outside_f1_masked(model: &dyn Classifier, ds: &Dataset, masks: &RuleMaskCache) -> f64 {
    assert_eq!(masks.rows(), ds.n_rows(), "rule-mask cache is out of sync with the dataset");
    f1_over_rows(model, ds, &masks.outside_coverage())
}

/// Macro-F1 of the model over an explicit row list.
fn f1_over_rows(model: &dyn Classifier, ds: &Dataset, rows: &[usize]) -> f64 {
    let preds = model.predict_rows(ds, rows);
    let labels: Vec<u32> = rows.iter().map(|&i| ds.label(i)).collect();
    metrics::macro_f1(&preds, &labels, ds.n_classes())
}

/// The internal estimator `Ĵ` (complement form, higher is better).
///
/// Empty coverage scores the MRA term **0**, not vacuously 1: the loop's
/// candidate datasets carry their synthetic instances inside coverage, and
/// the difficult `tcf = 0` case *starts* with empty coverage — a vacuous 1.0
/// would make the initial objective unbeatable and deadlock Algorithm 1,
/// whereas the paper reports its largest gains exactly there (Figure 2).
pub fn empirical_j(
    model: &dyn Classifier,
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    weights: &ObjectiveWeights,
) -> ObjectiveValue {
    let mra = mra_opt(model, ds, frs).unwrap_or(0.0);
    let f1 = outside_f1(model, ds, frs);
    combine(mra, f1, weights)
}

/// [`empirical_j`] over an already-synced [`RuleMaskCache`] — the loop's
/// per-iteration objective without re-scanning the rules. Identical values
/// to [`empirical_j`] (same attributed/outside row lists, so the same
/// predictions are aggregated).
///
/// # Panics
///
/// Panics if the cache's synced row count differs from `ds.n_rows()`.
pub fn empirical_j_masked(
    model: &dyn Classifier,
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    weights: &ObjectiveWeights,
    masks: &RuleMaskCache,
) -> ObjectiveValue {
    let mra = mra_opt_masked(model, ds, frs, masks).unwrap_or(0.0);
    let f1 = outside_f1_masked(model, ds, masks);
    combine(mra, f1, weights)
}

/// The weighted `Ĵ` combination shared by both estimators.
fn combine(mra: f64, f1: f64, weights: &ObjectiveWeights) -> ObjectiveValue {
    let wsum = weights.mra + weights.f1;
    let j = if wsum > 0.0 { (weights.mra * mra + weights.f1 * f1) / wsum } else { 0.0 };
    ObjectiveValue { mra, f1, j }
}

/// The paper's held-out-test metric `J̄` (§5.1 "Metrics"): rule-coverage
/// probabilities estimated on `ds` weight the MRA terms; the remaining mass
/// weights the outside-coverage F1.
pub fn paper_j(model: &dyn Classifier, ds: &Dataset, frs: &FeedbackRuleSet) -> ObjectiveValue {
    let n = ds.n_rows();
    if n == 0 {
        return ObjectiveValue { mra: 1.0, f1: 1.0, j: 1.0 };
    }
    let attributed = frs.attributed_coverage(ds);
    let mut j = 0.0;
    let mut covered_rows = 0usize;
    let mut agreement_total = 0.0;
    for (r, rows) in attributed.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let rule = frs.rule(r);
        let mut agree = 0.0;
        for pred in model.predict_rows(ds, rows) {
            agree += rule.dist().prob(pred);
        }
        agreement_total += agree;
        covered_rows += rows.len();
        let rule_mra = agree / rows.len() as f64;
        let prob = rows.len() as f64 / n as f64;
        j += prob * rule_mra;
    }
    let f1 = outside_f1(model, ds, frs);
    let outside_prob = (n - covered_rows) as f64 / n as f64;
    j += outside_prob * f1;
    let mra = if covered_rows == 0 { 1.0 } else { agreement_total / covered_rows as f64 };
    ObjectiveValue { mra, f1, j }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};
    use frote_ml::Classifier;
    use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};

    /// Model: class 1 iff x >= 5.
    struct Threshold;
    impl Classifier for Threshold {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
            out.clear();
            if row[0].expect_num() >= 5.0 {
                out.extend_from_slice(&[0.0, 1.0]);
            } else {
                out.extend_from_slice(&[1.0, 0.0]);
            }
        }
    }

    fn ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push_row(&[Value::Num(i as f64)], u32::from(i >= 5)).unwrap();
        }
        d
    }

    fn rule(class: u32) -> FeedbackRuleSet {
        // covers x < 4 (rows 0..4)
        FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(4.0))]),
            LabelDist::Deterministic(class),
        )])
    }

    #[test]
    fn mra_counts_agreement_within_coverage() {
        let m = Threshold;
        // Rule says covered rows are class 0; model predicts 0 there -> MRA 1.
        assert_eq!(mra(&m, &ds(), &rule(0)), 1.0);
        // Rule says class 1; model disagrees on all 4 covered rows -> MRA 0.
        assert_eq!(mra(&m, &ds(), &rule(1)), 0.0);
    }

    #[test]
    fn mra_probabilistic_uses_expected_agreement() {
        let m = Threshold;
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(4.0))]),
            LabelDist::probabilistic(vec![0.7, 0.3]).unwrap(),
        )]);
        // Model predicts 0 on the coverage; expected agreement 0.7.
        assert!((mra(&m, &ds(), &frs) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_coverage_is_vacuous() {
        let m = Threshold;
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Gt, Value::Num(100.0))]),
            LabelDist::Deterministic(1),
        )]);
        assert_eq!(mra(&m, &ds(), &frs), 1.0);
        let v = paper_j(&m, &ds(), &frs);
        assert_eq!(v.mra, 1.0);
    }

    #[test]
    fn outside_f1_ignores_coverage() {
        let m = Threshold;
        // Model is perfect on the true labels; outside F1 should be 1.
        assert_eq!(outside_f1(&m, &ds(), &rule(1)), 1.0);
    }

    #[test]
    fn empirical_j_weighted_combination() {
        let m = Threshold;
        let v = empirical_j(&m, &ds(), &rule(1), &ObjectiveWeights::default());
        assert_eq!(v.mra, 0.0);
        assert_eq!(v.f1, 1.0);
        assert!((v.j - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_j_weights_by_coverage_probability() {
        let m = Threshold;
        // Coverage = 4/10 rows with MRA 0, outside = 6/10 with F1 1.
        let v = paper_j(&m, &ds(), &rule(1));
        assert!((v.j - 0.6).abs() < 1e-12, "j = {}", v.j);
        // And with an agreeing rule the metric is perfect.
        let v = paper_j(&m, &ds(), &rule(0));
        assert!((v.j - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_paper_j() {
        let m = Threshold;
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let empty = Dataset::new(schema);
        let v = paper_j(&m, &empty, &rule(0));
        assert_eq!(v.j, 1.0);
    }

    #[test]
    fn masked_objective_equals_rescanning() {
        let m = Threshold;
        let d = ds();
        for frs in [rule(0), rule(1)] {
            let mut masks = RuleMaskCache::compile(&frs, d.schema()).unwrap();
            masks.sync(&d);
            assert_eq!(mra_opt_masked(&m, &d, &frs, &masks), mra_opt(&m, &d, &frs));
            assert_eq!(outside_f1_masked(&m, &d, &masks), outside_f1(&m, &d, &frs));
            let w = ObjectiveWeights::default();
            assert_eq!(empirical_j_masked(&m, &d, &frs, &w, &masks), empirical_j(&m, &d, &frs, &w));
        }
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn masked_objective_rejects_stale_cache() {
        let m = Threshold;
        let d = ds();
        let frs = rule(0);
        let masks = RuleMaskCache::compile(&frs, d.schema()).unwrap(); // never synced
        empirical_j_masked(&m, &d, &frs, &ObjectiveWeights::default(), &masks);
    }

    #[test]
    fn zero_weights_are_safe() {
        let m = Threshold;
        let v = empirical_j(&m, &ds(), &rule(0), &ObjectiveWeights { mra: 0.0, f1: 0.0 });
        assert_eq!(v.j, 0.0);
    }
}
