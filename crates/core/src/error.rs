//! Error type for the FROTE core.

use std::error::Error as StdError;
use std::fmt;

use frote_rules::RuleError;

/// Errors produced by the FROTE pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FroteError {
    /// The input dataset was empty.
    EmptyDataset,
    /// The feedback rule set was empty — nothing to edit.
    EmptyRuleSet,
    /// The rule set failed validation or contained conflicts.
    Rules(RuleError),
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable detail.
        detail: String,
    },
    /// The dataset is smaller than `k + 1`, so no rule can be covered even
    /// after full relaxation.
    DatasetTooSmall {
        /// Dataset rows.
        rows: usize,
        /// Required minimum (`k + 1`).
        required: usize,
    },
}

impl fmt::Display for FroteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FroteError::EmptyDataset => write!(f, "input dataset is empty"),
            FroteError::EmptyRuleSet => write!(f, "feedback rule set is empty"),
            FroteError::Rules(e) => write!(f, "invalid feedback rules: {e}"),
            FroteError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            FroteError::DatasetTooSmall { rows, required } => {
                write!(f, "dataset has {rows} rows, augmentation needs at least {required}")
            }
        }
    }
}

impl StdError for FroteError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            FroteError::Rules(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuleError> for FroteError {
    fn from(e: RuleError) -> Self {
        FroteError::Rules(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FroteError::DatasetTooSmall { rows: 3, required: 6 };
        assert_eq!(e.to_string(), "dataset has 3 rows, augmentation needs at least 6");
        let e = FroteError::from(RuleError::UnknownClass { class: 9 });
        assert!(e.to_string().contains("unknown class index 9"));
        assert!(StdError::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<FroteError>();
    }
}
