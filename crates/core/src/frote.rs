//! The FROTE augmentation loop (paper Algorithm 1).

use frote_data::Dataset;
use frote_ml::{Classifier, TrainAlgorithm};
use frote_obs::{trace, Counter, Gauge, Histogram};
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;

use crate::error::FroteError;
use crate::generate::{Generator, LabelPolicy};
use crate::modstrategy::ModStrategy;
use crate::objective::{empirical_j_masked, ObjectiveWeights};
use crate::preselect::BasePopulation;
use crate::report::{FroteReport, IterationRecord};
use crate::select::{SelectCache, SelectionStrategy};

// Loop metrics (see frote-obs). The counters and the objective gauge are
// thread-invariant: accept/reject decisions and `Ĵ` are pinned bit-identical
// at any `FROTE_THREADS` by the determinism contract. Only the span timings
// vary run to run.
static ITERATIONS: Counter = Counter::new("frote.iterations");
static ACCEPTED: Counter = Counter::new("frote.accepted");
static REJECTED: Counter = Counter::new("frote.rejected");
static SYNTHETIC_ROWS: Counter = Counter::new("frote.synthetic_rows");
static ROWS_APPENDED: Counter = Counter::new("frote.rows_appended");
static ROWS_TRUNCATED: Counter = Counter::new("frote.rows_truncated");
static OBJECTIVE: Gauge = Gauge::new("frote.objective");
static ITERATION_SPAN: Histogram = Histogram::new("frote.iteration_ns");

/// Configuration of a FROTE run. Defaults mirror the paper's experimental
/// setup (§5.1): `q = 0.5`, `τ = 200`, `k = 5`, `random` selection,
/// `relabel` modification, 0.5/0.5 objective weighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FroteConfig {
    /// Oversampling fraction `q`: the augmentation quota relative to `|D|`.
    pub oversampling_fraction: f64,
    /// Iteration limit `τ`: how many times the user is willing to run the
    /// training algorithm.
    pub iteration_limit: usize,
    /// Nearest-neighbour count `k` for generation and relaxation.
    pub k: usize,
    /// Instances generated per iteration `η`. `None` derives the paper's
    /// `q·|D|/τ` (line 1 of Algorithm 1); the paper also overrides this per
    /// dataset (e.g. 200 for Adult, 20 for Breast Cancer).
    pub instances_per_iteration: Option<usize>,
    /// Base-instance selection strategy (line 7).
    pub selection: SelectionStrategy,
    /// Input-dataset modification strategy applied before the loop.
    pub mod_strategy: ModStrategy,
    /// Weights of the internal objective `Ĵ`.
    pub weights: ObjectiveWeights,
    /// Labelling of generated instances.
    pub label_policy: LabelPolicy,
}

impl Default for FroteConfig {
    fn default() -> Self {
        FroteConfig {
            oversampling_fraction: 0.5,
            iteration_limit: 200,
            k: 5,
            instances_per_iteration: None,
            selection: SelectionStrategy::Random,
            mod_strategy: ModStrategy::Relabel,
            weights: ObjectiveWeights::default(),
            label_policy: LabelPolicy::FromRule,
        }
    }
}

/// The FROTE editor. Construct with [`Frote::new`] or [`Frote::builder`],
/// then call [`Frote::run`].
#[derive(Debug, Clone)]
pub struct Frote {
    config: FroteConfig,
}

/// Output of a FROTE run.
pub struct FroteOutput {
    /// The augmented dataset `D̂` — retraining on it yields the edited model.
    pub dataset: Dataset,
    /// The model trained on the final `D̂` (the last retrain of the loop).
    pub model: Box<dyn Classifier>,
    /// Progress trace.
    pub report: FroteReport,
}

impl Frote {
    /// Creates an editor from a full configuration.
    pub fn new(config: FroteConfig) -> Self {
        Frote { config }
    }

    /// Starts a builder with the paper's defaults.
    pub fn builder() -> FroteBuilder {
        FroteBuilder { config: FroteConfig::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FroteConfig {
        &self.config
    }

    /// Runs Algorithm 1: modifies `input` per the mod strategy, then
    /// iteratively generates rule-constrained synthetic instances, keeping a
    /// candidate dataset only when retraining on it improves the empirical
    /// objective.
    ///
    /// # Errors
    ///
    /// - [`FroteError::EmptyDataset`] / [`FroteError::EmptyRuleSet`] on empty
    ///   inputs (including a `drop` strategy that empties the dataset),
    /// - [`FroteError::Rules`] if the FRS fails validation or has conflicts,
    /// - [`FroteError::InvalidConfig`] for non-positive `τ`/`k` or a negative
    ///   `q`,
    /// - [`FroteError::DatasetTooSmall`] when `|D| < k + 1`.
    pub fn run(
        &self,
        input: &Dataset,
        algorithm: &dyn TrainAlgorithm,
        frs: &FeedbackRuleSet,
        rng: &mut StdRng,
    ) -> Result<FroteOutput, FroteError> {
        self.run_with_observer(input, algorithm, frs, rng, |_, _| {})
    }

    /// Like [`Frote::run`], but invokes `observer` after every iteration with
    /// the candidate model and the iteration record. Used by the evaluation
    /// harness to track held-out-test objectives during augmentation (the
    /// paper's Figure 9).
    ///
    /// # Errors
    ///
    /// As [`Frote::run`].
    pub fn run_with_observer<F>(
        &self,
        input: &Dataset,
        algorithm: &dyn TrainAlgorithm,
        frs: &FeedbackRuleSet,
        rng: &mut StdRng,
        mut observer: F,
    ) -> Result<FroteOutput, FroteError>
    where
        F: FnMut(&dyn Classifier, &IterationRecord),
    {
        let cfg = &self.config;
        if input.is_empty() {
            return Err(FroteError::EmptyDataset);
        }
        if frs.is_empty() {
            return Err(FroteError::EmptyRuleSet);
        }
        frs.validate(input.schema())?;
        frs.require_effectively_conflict_free(input.schema())?;
        if cfg.iteration_limit == 0 {
            return Err(FroteError::InvalidConfig {
                detail: "iteration limit must be >= 1".into(),
            });
        }
        if cfg.k == 0 {
            return Err(FroteError::InvalidConfig { detail: "k must be >= 1".into() });
        }
        if cfg.oversampling_fraction < 0.0 {
            return Err(FroteError::InvalidConfig {
                detail: "oversampling fraction must be non-negative".into(),
            });
        }

        // Line 1: η ← q|D|/τ (unless overridden), D̂ ← D (after modification).
        let quota = (cfg.oversampling_fraction * input.n_rows() as f64).round() as usize;
        let eta =
            cfg.instances_per_iteration.unwrap_or_else(|| (quota / cfg.iteration_limit).max(1));
        let mut active = cfg.mod_strategy.apply(input, frs);
        if active.is_empty() {
            return Err(FroteError::EmptyDataset);
        }
        if active.n_rows() < cfg.k + 1 {
            return Err(FroteError::DatasetTooSmall { rows: active.n_rows(), required: cfg.k + 1 });
        }

        // Lines 2-4: initial model, objective, base population. The cache
        // is created first: histogram-mode trainers bin the base rows here
        // and bin only appended rows on every retrain below, and the rule
        // set is compiled onto the columnar engine once — every objective
        // evaluation reads coverage from incrementally synced bitmasks.
        let mut select_cache = SelectCache::new();
        let mut model = algorithm.train_cached(&active, select_cache.train_cache());
        let initial = {
            let masks = select_cache.rule_masks(frs, &active);
            empirical_j_masked(model.as_ref(), &active, frs, &cfg.weights, masks)
        };
        let mut best = initial;
        let mut bp = BasePopulation::pre_select(&active, frs, cfg.k);

        // Lines 5-18: the augmentation loop. The select cache keeps the
        // proxy strategies' encoded matrix — and the trainer's bin codes —
        // incremental across iterations (base rows encoded/binned once;
        // only accepted synthetic rows are appended) — bit-identical to
        // refitting from scratch.
        let mut iterations = Vec::new();
        let mut total_added = 0usize;
        let mut i = 0usize;
        while i < cfg.iteration_limit && total_added <= quota {
            let _span = ITERATION_SPAN.span();
            let base = cfg.selection.select(
                &active,
                frs,
                &bp,
                eta,
                cfg.k,
                model.as_ref(),
                &mut select_cache,
                rng,
            );
            if base.is_empty() {
                break; // no viable rule populations — nothing can be generated
            }
            let synthetic = {
                let generator = Generator::new(&active, frs, &bp, cfg.k, cfg.label_policy);
                generator.generate(&base, rng)
            };
            if synthetic.is_empty() {
                break;
            }
            let mut candidate = active.clone();
            candidate.extend_from(&synthetic).expect("generator preserves the schema");
            let candidate_model = algorithm.train_cached(&candidate, select_cache.train_cache());
            // Line 11 (Ĵ_D̂(M_D', F)) is read as "the empirical objective
            // over the current candidate dataset": with tcf = 0 the only
            // rule-covered instances in existence are the synthetic ones in
            // D', so evaluating over the pre-augmentation D̂ would leave the
            // MRA term empty forever and no candidate could be accepted.
            let candidate_j = {
                let masks = select_cache.rule_masks(frs, &candidate);
                empirical_j_masked(candidate_model.as_ref(), &candidate, frs, &cfg.weights, masks)
            };
            let accepted = candidate_j.j > best.j;
            let record = IterationRecord {
                iteration: i,
                accepted,
                proposed: synthetic.n_rows(),
                candidate: candidate_j,
                total_added: total_added + if accepted { synthetic.n_rows() } else { 0 },
            };
            observer(candidate_model.as_ref(), &record);
            ITERATIONS.inc();
            SYNTHETIC_ROWS.add(synthetic.n_rows() as u64);
            if accepted {
                ACCEPTED.inc();
                ROWS_APPENDED.add(synthetic.n_rows() as u64);
                OBJECTIVE.set(candidate_j.j);
                active = candidate;
                model = candidate_model;
                best = candidate_j;
                total_added += synthetic.n_rows();
                bp = BasePopulation::pre_select(&active, frs, cfg.k);
            } else {
                REJECTED.inc();
                ROWS_TRUNCATED.add(synthetic.n_rows() as u64);
                // Roll the train cache and rule-mask plane back to the
                // surviving rows so the next candidate's rows replace the
                // rejected ones.
                select_cache.truncate_train(active.n_rows());
            }
            trace::emit(
                "frote.iteration",
                &[
                    ("iteration", i as f64),
                    ("accepted", f64::from(u8::from(accepted))),
                    ("proposed", synthetic.n_rows() as f64),
                    ("objective", candidate_j.j),
                    ("total_added", total_added as f64),
                ],
            );
            iterations.push(record);
            i += 1;
        }

        let final_objective = {
            let masks = select_cache.rule_masks(frs, &active);
            empirical_j_masked(model.as_ref(), &active, frs, &cfg.weights, masks)
        };
        Ok(FroteOutput {
            dataset: active,
            model,
            report: FroteReport {
                initial,
                iterations,
                final_objective,
                instances_added: total_added,
            },
        })
    }
}

/// Builder for [`Frote`]; see [`Frote::builder`].
#[derive(Debug, Clone)]
pub struct FroteBuilder {
    config: FroteConfig,
}

impl FroteBuilder {
    /// Sets the oversampling fraction `q`.
    pub fn oversampling_fraction(mut self, q: f64) -> Self {
        self.config.oversampling_fraction = q;
        self
    }

    /// Sets the iteration limit `τ`.
    pub fn iteration_limit(mut self, tau: usize) -> Self {
        self.config.iteration_limit = tau;
        self
    }

    /// Sets the neighbour count `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Overrides the per-iteration generation count `η`.
    pub fn instances_per_iteration(mut self, eta: usize) -> Self {
        self.config.instances_per_iteration = Some(eta);
        self
    }

    /// Sets the selection strategy.
    pub fn selection(mut self, s: SelectionStrategy) -> Self {
        self.config.selection = s;
        self
    }

    /// Sets the input modification strategy.
    pub fn mod_strategy(mut self, m: ModStrategy) -> Self {
        self.config.mod_strategy = m;
        self
    }

    /// Sets the objective weights.
    pub fn weights(mut self, w: ObjectiveWeights) -> Self {
        self.config.weights = w;
        self
    }

    /// Sets the label policy for generated instances.
    pub fn label_policy(mut self, p: LabelPolicy) -> Self {
        self.config.label_policy = p;
        self
    }

    /// Finalizes the editor.
    pub fn build(self) -> Frote {
        Frote { config: self.config }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::{Schema, Value};
    use frote_ml::forest::{ForestParams, RandomForestTrainer};
    use frote_rules::{parse::parse_rule, Clause, FeedbackRule, LabelDist};
    use rand::SeedableRng;

    fn fast_trainer() -> RandomForestTrainer {
        RandomForestTrainer::new(ForestParams { n_trees: 8, ..Default::default() }, 42)
    }

    fn quick_config() -> FroteConfig {
        FroteConfig { iteration_limit: 6, instances_per_iteration: Some(20), ..Default::default() }
    }

    #[test]
    fn improves_objective_on_planted_scenario() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
        // A rule that contradicts the planted concept: low safety -> "acc".
        let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule]);
        let mut rng = StdRng::seed_from_u64(42);
        let out = Frote::new(quick_config()).run(&ds, &fast_trainer(), &frs, &mut rng).unwrap();
        // Relabel + augmentation: final objective must not be worse than the
        // initial one (Algorithm 1 never accepts a worse dataset).
        assert!(out.report.final_objective.j + 1e-9 >= out.report.initial.j);
        assert_eq!(out.dataset.n_rows(), 400 + out.report.instances_added, "row accounting");
    }

    #[test]
    fn never_accepts_a_worse_candidate() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let rule = parse_rule("safety = med => good", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule]);
        let mut rng = StdRng::seed_from_u64(7);
        let out = Frote::new(quick_config()).run(&ds, &fast_trainer(), &frs, &mut rng).unwrap();
        let mut floor = out.report.initial.j;
        for r in &out.report.iterations {
            if r.accepted {
                assert!(r.candidate.j > floor, "accepted non-improving iteration {r:?}");
                floor = r.candidate.j;
            }
        }
    }

    #[test]
    fn respects_quota_and_iteration_limit() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let rule = parse_rule("safety = high => vgood", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule]);
        let config = FroteConfig {
            oversampling_fraction: 0.1,
            iteration_limit: 4,
            instances_per_iteration: Some(10),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let out = Frote::new(config).run(&ds, &fast_trainer(), &frs, &mut rng).unwrap();
        assert!(out.report.n_iterations() <= 4);
        // Quota is 30; the loop stops once total exceeds it, so at most one
        // extra batch of 10 can slip in.
        assert!(out.report.instances_added <= 40);
    }

    #[test]
    fn validation_errors() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 100, ..Default::default() });
        let rule = parse_rule("safety = high => vgood", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule.clone()]);
        let trainer = fast_trainer();
        let mut rng = StdRng::seed_from_u64(0);

        let empty = Dataset::new(ds.schema().clone());
        assert!(matches!(
            Frote::new(quick_config()).run(&empty, &trainer, &frs, &mut rng),
            Err(FroteError::EmptyDataset)
        ));
        assert!(matches!(
            Frote::new(quick_config()).run(&ds, &trainer, &FeedbackRuleSet::empty(), &mut rng),
            Err(FroteError::EmptyRuleSet)
        ));
        let bad_cfg = FroteConfig { iteration_limit: 0, ..Default::default() };
        assert!(matches!(
            Frote::new(bad_cfg).run(&ds, &trainer, &frs, &mut rng),
            Err(FroteError::InvalidConfig { .. })
        ));
        let bad_cfg = FroteConfig { oversampling_fraction: -0.5, ..Default::default() };
        assert!(matches!(
            Frote::new(bad_cfg).run(&ds, &trainer, &frs, &mut rng),
            Err(FroteError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn conflicting_rules_rejected() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 100, ..Default::default() });
        let frs = FeedbackRuleSet::new(vec![
            parse_rule("safety = high => vgood", ds.schema()).unwrap(),
            parse_rule("safety = high => unacc", ds.schema()).unwrap(),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Frote::new(quick_config()).run(&ds, &fast_trainer(), &frs, &mut rng),
            Err(FroteError::Rules(_))
        ));
    }

    #[test]
    fn tiny_dataset_rejected() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut tiny = Dataset::new(schema);
        for i in 0..3 {
            tiny.push_row(&[Value::Num(i as f64)], 0).unwrap();
        }
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::always_true(),
            LabelDist::Deterministic(1),
        )]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Frote::new(quick_config()).run(&tiny, &fast_trainer(), &frs, &mut rng),
            Err(FroteError::DatasetTooSmall { rows: 3, required: 6 })
        ));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let ds = DatasetKind::Mushroom.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let rule = parse_rule("bruises = bruises-1 => poisonous", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule]);
        let trainer = fast_trainer();
        let a = Frote::new(quick_config())
            .run(&ds, &trainer, &frs, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = Frote::new(quick_config())
            .run(&ds, &trainer, &frs, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn builder_roundtrip() {
        let frote = Frote::builder()
            .oversampling_fraction(0.3)
            .iteration_limit(12)
            .k(3)
            .instances_per_iteration(7)
            .selection(SelectionStrategy::Ip)
            .mod_strategy(ModStrategy::Drop)
            .weights(ObjectiveWeights { mra: 0.7, f1: 0.3 })
            .label_policy(LabelPolicy::Calibrated { p: 0.8 })
            .build();
        let c = frote.config();
        assert_eq!(c.oversampling_fraction, 0.3);
        assert_eq!(c.iteration_limit, 12);
        assert_eq!(c.k, 3);
        assert_eq!(c.instances_per_iteration, Some(7));
        assert_eq!(c.selection, SelectionStrategy::Ip);
        assert_eq!(c.mod_strategy, ModStrategy::Drop);
    }

    #[test]
    fn synthetic_rows_satisfy_their_rules() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let rule = parse_rule("safety = low => vgood", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule.clone()]);
        let mut rng = StdRng::seed_from_u64(11);
        let out = Frote::new(quick_config()).run(&ds, &fast_trainer(), &frs, &mut rng).unwrap();
        // All appended rows (beyond the original 300) satisfy the rule's
        // clause and carry its class.
        let class = rule.dist().mode();
        for i in 300..out.dataset.n_rows() {
            assert!(rule.clause().satisfied_by(&out.dataset.row(i)));
            assert_eq!(out.dataset.label(i), class);
        }
    }
}
