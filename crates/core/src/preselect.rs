//! `PreSelectBP` — base-population pre-selection (paper Algorithm 2).
//!
//! FROTE restricts the base population to the rules' coverage (motivated by
//! the MRA term of Eq. 3) and maintains *per-rule* populations. A rule whose
//! coverage in the active dataset is below `k + 1` is relaxed to its maximal
//! partial rule (`frote_rules::relax`), so every rule retains enough
//! neighbours for SMOTE-style generation; instances matching the relaxed
//! clause are the paper's "weakly covered" base instances.

use frote_data::Dataset;
use frote_rules::relax::relax_clause;
use frote_rules::{Clause, FeedbackRuleSet};

/// Per-rule base population.
#[derive(Debug, Clone, PartialEq)]
pub struct RulePopulation {
    /// Index of the rule in the FRS.
    pub rule: usize,
    /// The clause actually used for membership (the rule's own clause, or
    /// its maximal partial relaxation).
    pub effective_clause: Clause,
    /// Whether relaxation fired.
    pub relaxed: bool,
    /// Row indices of the active dataset in this population.
    pub members: Vec<usize>,
}

/// The full base population: one entry per rule, in FRS order.
#[derive(Debug, Clone, PartialEq)]
pub struct BasePopulation {
    populations: Vec<RulePopulation>,
}

impl BasePopulation {
    /// Runs `PreSelectBP` over `ds` requiring at least `k + 1` members per
    /// rule.
    ///
    /// Rules that cannot reach `k + 1` members even fully relaxed (only
    /// possible when `ds.n_rows() < k + 1`) keep whatever the empty clause
    /// covers; [`BasePopulation::viable`] reports per-rule viability so the
    /// caller can skip generation for them.
    pub fn pre_select(ds: &Dataset, frs: &FeedbackRuleSet, k: usize) -> BasePopulation {
        let min_support = k + 1;
        // Per-rule relaxation + coverage scans are independent; run them in
        // parallel (identical per-rule results, FRS order preserved). Each
        // scan inside — relaxation's repeated `coverage_count` probes and
        // the final membership `coverage` — runs on the compiled columnar
        // engine (`frote_rules::engine`), since every relaxed clause is a
        // predicate subset of an already-validated clause.
        let rules: Vec<usize> = (0..frs.len()).collect();
        let populations = frote_par::par_map(&rules, |&r| {
            let relaxed = relax_clause(frs.rule(r).clause(), ds, min_support);
            RulePopulation {
                rule: r,
                members: relaxed.clause.coverage(ds),
                relaxed: relaxed.was_relaxed(),
                effective_clause: relaxed.clause,
            }
        });
        BasePopulation { populations }
    }

    /// Per-rule populations in FRS order.
    pub fn populations(&self) -> &[RulePopulation] {
        &self.populations
    }

    /// The population of rule `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn population(&self, r: usize) -> &RulePopulation {
        &self.populations[r]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.populations.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.populations.is_empty()
    }

    /// Rules with at least `k + 1` members (generation is possible).
    pub fn viable(&self, k: usize) -> Vec<usize> {
        self.populations.iter().filter_map(|p| (p.members.len() > k).then_some(p.rule)).collect()
    }

    /// Union of all members (sorted, deduplicated) — the paper's `P`.
    pub fn union(&self) -> Vec<usize> {
        let mut all: Vec<usize> =
            self.populations.iter().flat_map(|p| p.members.iter().copied()).collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};
    use frote_rules::{FeedbackRule, LabelDist, Op, Predicate};

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into()])
            .build()
    }

    /// x = 0..20; k = q only for x >= 18.
    fn ds() -> Dataset {
        let mut d = Dataset::new(schema());
        for i in 0..20 {
            d.push_row(&[Value::Num(i as f64), Value::Cat(u32::from(i >= 18))], 0).unwrap();
        }
        d
    }

    fn rule(preds: Vec<Predicate>) -> FeedbackRule {
        FeedbackRule::new(Clause::new(preds), LabelDist::Deterministic(1))
    }

    #[test]
    fn wide_rule_is_not_relaxed() {
        let frs =
            FeedbackRuleSet::new(vec![rule(vec![Predicate::new(0, Op::Lt, Value::Num(10.0))])]);
        let bp = BasePopulation::pre_select(&ds(), &frs, 5);
        let p = bp.population(0);
        assert!(!p.relaxed);
        assert_eq!(p.members.len(), 10);
        assert_eq!(bp.viable(5), vec![0]);
    }

    #[test]
    fn narrow_rule_gets_relaxed_to_k_plus_one() {
        // "x >= 18 AND k = q" covers 2 rows < 6; relaxation must widen it.
        let frs = FeedbackRuleSet::new(vec![rule(vec![
            Predicate::new(0, Op::Ge, Value::Num(18.0)),
            Predicate::new(1, Op::Eq, Value::Cat(1)),
        ])]);
        let bp = BasePopulation::pre_select(&ds(), &frs, 5);
        let p = bp.population(0);
        assert!(p.relaxed);
        assert!(p.members.len() >= 6, "members {:?}", p.members.len());
        // The effective clause is a subset of the original conditions.
        assert!(p.effective_clause.subset_of(frs.rule(0).clause()));
    }

    #[test]
    fn zero_coverage_rule_relaxes_fully() {
        let frs =
            FeedbackRuleSet::new(vec![rule(vec![Predicate::new(0, Op::Gt, Value::Num(99.0))])]);
        let bp = BasePopulation::pre_select(&ds(), &frs, 5);
        let p = bp.population(0);
        assert!(p.relaxed);
        assert!(p.effective_clause.is_empty());
        assert_eq!(p.members.len(), 20);
    }

    #[test]
    fn tiny_dataset_rule_not_viable() {
        let mut d = Dataset::new(schema());
        for i in 0..3 {
            d.push_row(&[Value::Num(i as f64), Value::Cat(0)], 0).unwrap();
        }
        let frs =
            FeedbackRuleSet::new(vec![rule(vec![Predicate::new(0, Op::Lt, Value::Num(2.0))])]);
        let bp = BasePopulation::pre_select(&d, &frs, 5);
        assert!(bp.viable(5).is_empty());
        assert_eq!(bp.union().len(), 3);
    }

    #[test]
    fn union_dedups_across_rules() {
        let frs = FeedbackRuleSet::new(vec![
            rule(vec![Predicate::new(0, Op::Lt, Value::Num(12.0))]),
            rule(vec![Predicate::new(0, Op::Lt, Value::Num(8.0))]),
        ]);
        let bp = BasePopulation::pre_select(&ds(), &frs, 3);
        assert_eq!(bp.len(), 2);
        assert!(!bp.is_empty());
        assert_eq!(bp.union().len(), 12);
    }
}
