//! Zero-perturbation observability for the FROTE reproduction.
//!
//! This crate provides a process-global metrics registry — atomic
//! [`Counter`]s, [`Gauge`]s, fixed-bucket latency [`Histogram`]s with
//! lock-free `u64` bins, and RAII [`SpanTimer`]s — plus a lightweight
//! structured event [`trace`] (a bounded ring buffer of typed events).
//!
//! # Gating
//!
//! Everything is off by default and compiled down to a single relaxed
//! atomic load per call site when disabled. Two independent switches:
//!
//! - metrics: `FROTE_METRICS=1` in the environment, or
//!   [`set_metrics_enabled`] as a process-default override (the same
//!   pattern as `frote_par::set_threads` / `frote_ml::set_default_split_mode`);
//! - trace: `FROTE_TRACE=1`, or [`trace::set_trace_enabled`].
//!
//! # Determinism contract
//!
//! Instrumentation is observation-only: no instrumented code path may
//! branch on a metric value, so every golden output is byte-identical
//! with metrics on or off. Counters and gauges carry a [`Variance`]
//! tag: `Invariant` values must be identical at any `FROTE_THREADS`
//! (they are pinned by the `obs_invariance` integration suite), while
//! `ThreadVariant` values (per-worker task counts, steal counts, span
//! timings) may legitimately differ run to run.
//!
//! # Adding a metric
//!
//! Declare a `static` and bump it; registration is lazy on first use:
//!
//! ```
//! static ROWS_SCANNED: frote_obs::Counter = frote_obs::Counter::new("demo.rows_scanned");
//! ROWS_SCANNED.add(128);
//! ```

pub mod trace;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------------

const FORCE_UNSET: u8 = 0;
const FORCE_OFF: u8 = 1;
const FORCE_ON: u8 = 2;

static METRICS_FORCE: AtomicU8 = AtomicU8::new(FORCE_UNSET);

pub(crate) fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

fn metrics_env() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| env_flag("FROTE_METRICS"))
}

/// Whether metric recording is currently on.
///
/// Resolution order: a [`set_metrics_enabled`] override wins, otherwise
/// the `FROTE_METRICS` environment variable (read once per process).
#[inline]
pub fn metrics_enabled() -> bool {
    match METRICS_FORCE.load(Ordering::Relaxed) {
        FORCE_ON => true,
        FORCE_OFF => false,
        _ => metrics_env(),
    }
}

/// Process-default override for metric recording, taking precedence
/// over `FROTE_METRICS`. Mirrors `frote_par::set_threads`.
pub fn set_metrics_enabled(on: bool) {
    METRICS_FORCE.store(if on { FORCE_ON } else { FORCE_OFF }, Ordering::Relaxed);
}

/// Drop any [`set_metrics_enabled`] override and fall back to the
/// environment. Primarily for tests.
pub fn clear_metrics_override() {
    METRICS_FORCE.store(FORCE_UNSET, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Variance tags
// ---------------------------------------------------------------------------

/// How a metric is allowed to vary under the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variance {
    /// Identical at any `FROTE_THREADS`; pinned by the invariance suite.
    Invariant,
    /// May differ across thread counts or runs (scheduling, timing).
    ThreadVariant,
}

impl Variance {
    /// Tag as it appears in the snapshot schema.
    pub fn tag(self) -> &'static str {
        match self {
            Variance::Invariant => "invariant",
            Variance::ThreadVariant => "thread_variant",
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metrics are plain data; a panic mid-update cannot leave them in a
    // state worth poisoning over.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
///
/// Declare as a `static`; the counter registers itself with the global
/// registry the first time it is bumped while metrics are enabled.
pub struct Counter {
    name: &'static str,
    variance: Variance,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A thread-invariant counter (the default: totals must match at
    /// any `FROTE_THREADS`).
    pub const fn new(name: &'static str) -> Self {
        Self::with_variance(name, Variance::Invariant)
    }

    /// A counter whose value legitimately depends on the thread count
    /// (e.g. steals, per-worker task totals).
    pub const fn thread_variant(name: &'static str) -> Self {
        Self::with_variance(name, Variance::ThreadVariant)
    }

    const fn with_variance(name: &'static str, variance: Variance) -> Self {
        Counter { name, variance, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Add `n`; a no-op while metrics are disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.touch();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1; a no-op while metrics are disabled.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name as it appears in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Variance tag.
    pub fn variance(&self) -> Variance {
        self.variance
    }

    fn touch(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            lock(&registry().counters).push(self);
        }
    }
}

/// A counter allocated at runtime (leaked to get `'static`), for
/// dynamically named series like per-worker task counts. Repeated calls
/// with the same name return the same counter; the set of names is
/// expected to be small and bounded (worker indices).
pub fn leaked_counter(name: String, variance: Variance) -> &'static Counter {
    static BY_NAME: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    let mut known = lock(BY_NAME.get_or_init(Mutex::default));
    if let Some(c) = known.iter().find(|c| c.name == name) {
        return c;
    }
    let name: &'static str = Box::leak(name.into_boxed_str());
    let counter: &'static Counter = Box::leak(Box::new(Counter::with_variance(name, variance)));
    known.push(counter);
    counter
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-value `f64` gauge (stored as IEEE bits in an `AtomicU64`).
pub struct Gauge {
    name: &'static str,
    variance: Variance,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A thread-invariant gauge.
    pub const fn new(name: &'static str) -> Self {
        Self::with_variance(name, Variance::Invariant)
    }

    /// A gauge whose value may depend on the thread count.
    pub const fn thread_variant(name: &'static str) -> Self {
        Self::with_variance(name, Variance::ThreadVariant)
    }

    const fn with_variance(name: &'static str, variance: Variance) -> Self {
        Gauge { name, variance, bits: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Store `v`; a no-op while metrics are disabled.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !metrics_enabled() {
            return;
        }
        self.touch();
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if larger. Only meaningful for
    /// non-negative values (the bit-level `fetch_max` matches IEEE
    /// ordering there); a no-op while metrics are disabled.
    #[inline]
    pub fn set_max(&'static self, v: f64) {
        debug_assert!(v >= 0.0, "Gauge::set_max requires non-negative values");
        if !metrics_enabled() {
            return;
        }
        self.touch();
        self.bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Metric name as it appears in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Variance tag.
    pub fn variance(&self) -> Variance {
        self.variance
    }

    fn touch(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            lock(&registry().gauges).push(self);
        }
    }
}

// ---------------------------------------------------------------------------
// Histogram + SpanTimer
// ---------------------------------------------------------------------------

/// Number of latency buckets per [`Histogram`].
pub const HIST_BUCKETS: usize = 24;

/// Lower bound of bucket 0 in nanoseconds; bucket `b` counts durations
/// in `[256 << (b-1), 256 << b)` ns (bucket 0 is `< 256` ns, the last
/// bucket is open-ended). 24 power-of-two buckets span 256 ns to ~2 s.
pub const HIST_BASE_NS: u64 = 256;

/// A fixed-bucket latency histogram with lock-free `u64` bins.
///
/// Timings are inherently run-variant, so histograms are always tagged
/// `thread_variant` in snapshots and never gated.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram; like counters, registration is lazy.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one duration in nanoseconds; a no-op while disabled.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        if !metrics_enabled() {
            return;
        }
        self.touch();
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Bucket index a duration of `ns` nanoseconds falls into.
    pub fn bucket_index(ns: u64) -> usize {
        let mut b = 0usize;
        let mut bound = HIST_BASE_NS;
        while b + 1 < HIST_BUCKETS && ns >= bound {
            bound <<= 1;
            b += 1;
        }
        b
    }

    /// Start an RAII span; the elapsed time is recorded on drop. When
    /// metrics are disabled the timer never reads the clock.
    #[inline]
    pub fn span(&'static self) -> SpanTimer {
        SpanTimer { hist: self, start: metrics_enabled().then(Instant::now) }
    }

    /// Total recorded spans.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Metric name as it appears in snapshots.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn touch(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            lock(&registry().histograms).push(self);
        }
    }
}

/// RAII timer returned by [`Histogram::span`]; records on drop.
pub struct SpanTimer {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hist.record_ns(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Point-in-time value of one counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// `"invariant"` or `"thread_variant"`.
    pub variance: String,
    /// Counter value.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// `"invariant"` or `"thread_variant"`.
    pub variance: String,
    /// Gauge value.
    pub value: f64,
}

/// Point-in-time state of one latency histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Always `"thread_variant"`: timings are never thread-invariant.
    pub variance: String,
    /// Total recorded spans.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts (see [`HIST_BASE_NS`] for the bucket layout).
    pub buckets: Vec<u64>,
}

/// All registered metrics at a point in time, sorted by name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Latency histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}

/// Snapshot every registered metric, sorted by name for stable output.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: Vec<CounterSnapshot> = lock(&registry().counters)
        .iter()
        .map(|c| CounterSnapshot {
            name: c.name.to_string(),
            variance: c.variance.tag().to_string(),
            value: c.value(),
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let mut gauges: Vec<GaugeSnapshot> = lock(&registry().gauges)
        .iter()
        .map(|g| GaugeSnapshot {
            name: g.name.to_string(),
            variance: g.variance.tag().to_string(),
            value: g.value(),
        })
        .collect();
    gauges.sort_by(|a, b| a.name.cmp(&b.name));

    let mut histograms: Vec<HistogramSnapshot> = lock(&registry().histograms)
        .iter()
        .map(|h| HistogramSnapshot {
            name: h.name.to_string(),
            variance: Variance::ThreadVariant.tag().to_string(),
            count: h.count(),
            sum_ns: h.sum_ns(),
            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    MetricsSnapshot { counters, gauges, histograms }
}

/// Pretty-printed JSON of [`snapshot`].
pub fn snapshot_json() -> String {
    serde_json::to_string_pretty(&snapshot()).expect("metrics snapshot serializes")
}

/// Human-readable end-of-run summary table of every registered metric.
pub fn summary_table() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42} {:>16}  {}\n{}\n",
        "metric",
        "value",
        "variance",
        "-".repeat(72)
    ));
    for c in &snap.counters {
        out.push_str(&format!("{:<42} {:>16}  {}\n", c.name, c.value, c.variance));
    }
    for g in &snap.gauges {
        out.push_str(&format!("{:<42} {:>16.6}  {}\n", g.name, g.value, g.variance));
    }
    for h in &snap.histograms {
        let mean_us = if h.count == 0 { 0.0 } else { h.sum_ns as f64 / h.count as f64 / 1_000.0 };
        out.push_str(&format!(
            "{:<42} {:>9} spans  mean {:.1}us  {}\n",
            h.name, h.count, mean_us, h.variance
        ));
    }
    out
}

/// Zero every registered metric (registration is kept) and clear the
/// event trace. Used between runs by tests and the perfsmoke harness.
pub fn reset() {
    for c in lock(&registry().counters).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in lock(&registry().gauges).iter() {
        g.bits.store(0, Ordering::Relaxed);
    }
    for h in lock(&registry().histograms).iter() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum_ns.store(0, Ordering::Relaxed);
    }
    trace::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metrics state is process-global; every test in this binary that
    // toggles it must hold this lock so the suite stays race-free under
    // the default parallel test runner.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_are_inert_when_disabled_and_count_when_enabled() {
        let _guard = test_lock();
        static C: Counter = Counter::new("test.inert");
        set_metrics_enabled(false);
        C.inc();
        C.add(41);
        assert_eq!(C.value(), 0, "disabled counters must not move");
        set_metrics_enabled(true);
        C.inc();
        C.add(41);
        assert_eq!(C.value(), 42);
        assert!(
            snapshot().counter("test.inert").is_some(),
            "first enabled bump registers the counter"
        );
        set_metrics_enabled(false);
        clear_metrics_override();
    }

    #[test]
    fn gauge_set_and_set_max() {
        let _guard = test_lock();
        static G: Gauge = Gauge::new("test.gauge");
        set_metrics_enabled(true);
        G.set(1.5);
        assert_eq!(G.value(), 1.5);
        G.set_max(0.5);
        assert_eq!(G.value(), 1.5, "set_max must not lower the gauge");
        G.set_max(2.25);
        assert_eq!(G.value(), 2.25);
        set_metrics_enabled(false);
        clear_metrics_override();
    }

    #[test]
    fn histogram_buckets_and_span_timer() {
        let _guard = test_lock();
        static H: Histogram = Histogram::new("test.hist");
        set_metrics_enabled(true);
        H.record_ns(0);
        H.record_ns(HIST_BASE_NS);
        H.record_ns(u64::MAX);
        {
            let _span = H.span();
        }
        assert_eq!(H.count(), 4);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(HIST_BASE_NS - 1), 0);
        assert_eq!(Histogram::bucket_index(HIST_BASE_NS), 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        set_metrics_enabled(false);
        clear_metrics_override();
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _guard = test_lock();
        static C: Counter = Counter::new("test.reset");
        set_metrics_enabled(true);
        C.add(7);
        reset();
        assert_eq!(C.value(), 0);
        let snap = snapshot();
        assert_eq!(
            snap.counter("test.reset"),
            Some(0),
            "reset keeps the metric registered at zero"
        );
        set_metrics_enabled(false);
        clear_metrics_override();
    }

    #[test]
    fn leaked_counters_dedupe_by_name() {
        let _guard = test_lock();
        let a = leaked_counter("test.worker.0.tasks".to_string(), Variance::ThreadVariant);
        let b = leaked_counter("test.worker.0.tasks".to_string(), Variance::ThreadVariant);
        assert!(std::ptr::eq(a, b), "same name must yield the same counter");
        assert_eq!(a.variance(), Variance::ThreadVariant);
    }

    #[test]
    fn snapshot_json_is_valid_and_sorted() {
        let _guard = test_lock();
        static C1: Counter = Counter::new("test.json.b");
        static C2: Counter = Counter::new("test.json.a");
        set_metrics_enabled(true);
        C1.inc();
        C2.inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot counters are name-sorted");
        let json = snapshot_json();
        let parsed: MetricsSnapshot =
            serde_json::from_str(&json).expect("snapshot JSON parses back");
        assert_eq!(parsed.counters.len(), snap.counters.len());
        assert!(!summary_table().is_empty());
        set_metrics_enabled(false);
        clear_metrics_override();
    }
}
