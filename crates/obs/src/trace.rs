//! Structured event trace: a bounded ring buffer of typed events.
//!
//! Gated independently of metrics via `FROTE_TRACE=1` (or
//! [`set_trace_enabled`]); when disabled, [`emit`] is a single relaxed
//! atomic load. Events carry a static label plus a small set of
//! numeric fields, which keeps emission allocation-light and the
//! buffer bounded regardless of run length.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::Serialize;

/// Maximum events retained; older events are dropped FIFO.
pub const TRACE_CAPACITY: usize = 4096;

const FORCE_UNSET: u8 = 0;
const FORCE_OFF: u8 = 1;
const FORCE_ON: u8 = 2;

static TRACE_FORCE: AtomicU8 = AtomicU8::new(FORCE_UNSET);

fn trace_env() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| crate::env_flag("FROTE_TRACE"))
}

/// Whether trace recording is currently on ([`set_trace_enabled`]
/// override first, then the `FROTE_TRACE` environment variable).
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_FORCE.load(Ordering::Relaxed) {
        FORCE_ON => true,
        FORCE_OFF => false,
        _ => trace_env(),
    }
}

/// Process-default override for trace recording, taking precedence
/// over `FROTE_TRACE`.
pub fn set_trace_enabled(on: bool) {
    TRACE_FORCE.store(if on { FORCE_ON } else { FORCE_OFF }, Ordering::Relaxed);
}

/// Drop any [`set_trace_enabled`] override. Primarily for tests.
pub fn clear_trace_override() {
    TRACE_FORCE.store(FORCE_UNSET, Ordering::Relaxed);
}

/// One named numeric field on a trace event.
#[derive(Debug, Clone, Serialize)]
pub struct TraceField {
    /// Field name.
    pub name: String,
    /// Field value (counts and objective values are all representable).
    pub value: f64,
}

/// One structured event.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Monotonic sequence number (1-based, survives ring eviction).
    pub seq: u64,
    /// Static event label, e.g. `"frote.iteration"`.
    pub label: String,
    /// Named numeric payload.
    pub fields: Vec<TraceField>,
}

#[derive(Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    seq: u64,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(Mutex::default)
}

fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(|e| e.into_inner())
}

/// Record one event; a no-op while tracing is disabled.
pub fn emit(label: &'static str, fields: &[(&'static str, f64)]) {
    if !trace_enabled() {
        return;
    }
    let mut ring = lock_ring();
    ring.seq += 1;
    let seq = ring.seq;
    if ring.events.len() == TRACE_CAPACITY {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(TraceEvent {
        seq,
        label: label.to_string(),
        fields: fields
            .iter()
            .map(|(name, value)| TraceField { name: (*name).to_string(), value: *value })
            .collect(),
    });
}

/// Copy of the retained events, oldest first.
pub fn snapshot() -> Vec<TraceEvent> {
    lock_ring().events.iter().cloned().collect()
}

/// Events evicted so far because the ring was full.
pub fn dropped() -> u64 {
    lock_ring().dropped
}

/// Drop all retained events and reset the sequence/dropped counters.
pub fn clear() {
    let mut ring = lock_ring();
    ring.events.clear();
    ring.seq = 0;
    ring.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn emit_is_inert_when_disabled() {
        let _guard = test_lock();
        clear();
        set_trace_enabled(false);
        emit("test.noop", &[]);
        assert!(snapshot().is_empty());
        clear_trace_override();
    }

    #[test]
    fn emit_records_labels_fields_and_sequence() {
        let _guard = test_lock();
        clear();
        set_trace_enabled(true);
        emit("test.alpha", &[("rows", 3.0), ("j", 0.5)]);
        emit("test.beta", &[]);
        let events = snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].label, "test.alpha");
        assert_eq!(events[0].fields[0].name, "rows");
        assert_eq!(events[0].fields[1].value, 0.5);
        assert_eq!(events[1].seq, 2);
        set_trace_enabled(false);
        clear_trace_override();
        clear();
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let _guard = test_lock();
        clear();
        set_trace_enabled(true);
        for _ in 0..(TRACE_CAPACITY + 10) {
            emit("test.fill", &[]);
        }
        let events = snapshot();
        assert_eq!(events.len(), TRACE_CAPACITY);
        assert_eq!(dropped(), 10);
        assert_eq!(events.first().map(|e| e.seq), Some(11), "oldest 10 events evicted");
        set_trace_enabled(false);
        clear_trace_override();
        clear();
    }
}
