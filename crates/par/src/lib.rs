//! # frote-par
//!
//! The deterministic parallel-execution runtime of the FROTE reproduction.
//!
//! The workspace's hot paths — batch kNN, SMOTE-style generation, rule
//! coverage scans, per-tree ensemble fitting, cross-validation folds,
//! experiment fan-out — are embarrassingly parallel, but the build
//! environment has no `rayon`. This crate provides the std-only substrate:
//!
//! - a scoped [`pool::ThreadPool`] (shared lazily as one global pool),
//! - data-parallel helpers [`par_map`] / [`par_chunks_map`] /
//!   [`par_blocks_map`] and the fork-join primitives [`join`] / [`scope`],
//! - [`SeedSplit`], which derives independent per-item RNG streams from one
//!   seed so randomized loops stay bit-identical at any thread count,
//! - a single thread-count resolver [`threads`]:
//!   `FROTE_THREADS` env var → [`set_threads`] override →
//!   `std::thread::available_parallelism()`.
//!
//! ## Determinism contract
//!
//! Every helper in this crate returns results in input order and applies the
//! caller's closure once per item, so for pure closures the output is
//! byte-identical to a serial loop regardless of `FROTE_THREADS`. Randomized
//! closures keep the same guarantee by drawing from a per-item
//! [`SeedSplit::stream`] instead of one shared sequential RNG. When
//! [`threads`] resolves to 1, every helper degrades to a plain serial loop
//! and the pool is never even started.

#![warn(missing_docs)]

pub mod pool;
mod seed;

pub use pool::{Scope, ThreadPool};
pub use seed::SeedSplit;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide override set by [`set_threads`] (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolves the thread count used by every parallel helper:
///
/// 1. the `FROTE_THREADS` environment variable (if set to a positive
///    integer),
/// 2. the [`set_threads`] config override (e.g. a `--threads` CLI flag),
/// 3. `std::thread::available_parallelism()`.
///
/// A result of 1 means "run serially"; helpers then never touch the pool.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("FROTE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Sets the config-level thread override (clamped to at least 1). The
/// `FROTE_THREADS` environment variable still takes precedence, so operators
/// can pin reproduction runs without touching CLI flags.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Clears the [`set_threads`] override (mainly for tests).
pub fn clear_threads_override() {
    THREAD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The lazily-started global pool shared by all helpers. Sized once, at
/// first parallel use, to the larger of the machine's parallelism and the
/// resolved thread count (capped defensively): correctness never depends on
/// the worker count, only how many chunks run truly concurrently.
fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ThreadPool::new(hw.max(threads()).min(64))
    })
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
/// `a` runs on the calling thread; `b` is offloaded when [`threads`] > 1.
/// Panics in either closure propagate (after both have stopped running).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb: Option<RB> = None;
    let ra = global_pool().scope(|s| {
        s.spawn(|| rb = Some(b()));
        a()
    });
    (ra, rb.expect("joined task completed"))
}

/// Runs `f` with a [`Scope`] on the global pool; see [`ThreadPool::scope`].
/// With [`threads`] == 1 the scope still works — tasks just queue to the
/// single global worker — so callers need no serial special case, though the
/// dedicated helpers below avoid the pool entirely in that regime.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    global_pool().scope(f)
}

/// Applies `f` to every element, in parallel, returning results in input
/// order — byte-identical to `items.iter().map(f).collect()` for pure `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let t = threads();
    if t <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // Chunk count tracks the thread count, but since `f` is applied per
    // item and outputs are reassembled in order, chunking never affects the
    // result — only the schedule.
    let chunk_size = items.len().div_ceil(t.min(items.len()));
    let parts: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    global_pool().scope(|s| {
        for (ci, chunk) in items.chunks(chunk_size).enumerate() {
            let parts = &parts;
            let f = &f;
            s.spawn(move || {
                let out: Vec<U> = chunk.iter().map(f).collect();
                parts.lock().expect("par_map parts poisoned").push((ci, out));
            });
        }
    });
    let mut parts = parts.into_inner().expect("par_map parts poisoned");
    parts.sort_unstable_by_key(|&(ci, _)| ci);
    let mut out = Vec::with_capacity(items.len());
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// Splits `items` into fixed-size chunks of `chunk_size`, applies
/// `f(chunk_index, chunk)` to each in parallel, and concatenates the
/// per-chunk outputs in chunk order.
///
/// Chunk boundaries depend only on `chunk_size` — never on the thread
/// count — so closures may key per-chunk behaviour (e.g. a
/// [`SeedSplit::stream`] per chunk) on `chunk_index` and remain
/// thread-count-invariant.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks_map<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> Vec<U> + Sync,
{
    assert!(chunk_size > 0, "par_chunks_map: chunk_size must be positive");
    let t = threads();
    if t <= 1 || items.len() <= chunk_size {
        let mut out = Vec::new();
        for (ci, chunk) in items.chunks(chunk_size).enumerate() {
            out.extend(f(ci, chunk));
        }
        return out;
    }
    let parts: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    global_pool().scope(|s| {
        for (ci, chunk) in items.chunks(chunk_size).enumerate() {
            let parts = &parts;
            let f = &f;
            s.spawn(move || {
                let out = f(ci, chunk);
                parts.lock().expect("par_chunks_map parts poisoned").push((ci, out));
            });
        }
    });
    let mut parts = parts.into_inner().expect("par_chunks_map parts poisoned");
    parts.sort_unstable_by_key(|&(ci, _)| ci);
    parts.into_iter().flat_map(|(_, part)| part).collect()
}

/// The index-range counterpart of [`par_chunks_map`], for scans over
/// `0..n` with no backing slice (columnar datasets): splits the range into
/// fixed `block_size` blocks, applies `f(block_index, range)` to each in
/// parallel, and concatenates the outputs in block order. Block boundaries
/// depend only on `block_size`, so results are thread-count-invariant, and
/// nothing of size `n` is materialized.
///
/// # Panics
///
/// Panics if `block_size == 0`.
pub fn par_blocks_map<U, F>(n: usize, block_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, core::ops::Range<usize>) -> Vec<U> + Sync,
{
    assert!(block_size > 0, "par_blocks_map: block_size must be positive");
    if threads() <= 1 || n <= block_size {
        let mut out = Vec::new();
        for (bi, start) in (0..n).step_by(block_size).enumerate() {
            out.extend(f(bi, start..(start + block_size).min(n)));
        }
        return out;
    }
    // One descriptor per block (n / block_size entries, never O(n));
    // par_map supplies the ordered scheduling.
    let blocks: Vec<(usize, usize)> = (0..n).step_by(block_size).enumerate().collect();
    par_map(&blocks, |&(bi, start)| f(bi, start..(start + block_size).min(n)))
        .into_iter()
        .flatten()
        .collect()
}

/// Test support: safely rebinding `FROTE_THREADS` within one process.
///
/// Environment mutation is process-global, so every determinism test that
/// compares thread counts must serialize its rebinding through one shared
/// lock — this module owns that lock for the whole workspace, so suites in
/// the same binary can't race each other.
pub mod test_support {
    use std::sync::Mutex;

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Restores the prior `FROTE_THREADS` binding on drop, so a panicking
    /// closure (a failed assertion) cannot leak the override into later
    /// tests of the same binary.
    struct Restore(Option<String>);

    impl Drop for Restore {
        fn drop(&mut self) {
            match self.0.take() {
                Some(v) => std::env::set_var("FROTE_THREADS", v),
                None => std::env::remove_var("FROTE_THREADS"),
            }
        }
    }

    /// Runs `f` with `FROTE_THREADS` bound to `value` (restored afterwards,
    /// even on panic). Calls serialize on a process-wide lock.
    pub fn with_threads_var<R>(value: &str, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = Restore(std::env::var("FROTE_THREADS").ok());
        std::env::set_var("FROTE_THREADS", value);
        f()
    }

    /// [`with_threads_var`] for a numeric thread count.
    pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        with_threads_var(&n.to_string(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_env_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        test_support::with_threads_var(n, f)
    }

    #[test]
    fn threads_resolver_priority() {
        with_env_threads("3", || {
            clear_threads_override();
            assert_eq!(threads(), 3, "env wins");
            set_threads(5);
            assert_eq!(threads(), 3, "env beats override");
        });
        with_env_threads("not-a-number", || {
            set_threads(5);
            assert_eq!(threads(), 5, "invalid env falls through to override");
            clear_threads_override();
            assert!(threads() >= 1, "falls back to available parallelism");
        });
    }

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for t in ["1", "2", "7"] {
            let par = with_env_threads(t, || par_map(&items, |&x| x * x + 1));
            assert_eq!(par, serial, "FROTE_THREADS={t}");
        }
    }

    #[test]
    fn par_chunks_map_matches_serial_and_passes_chunk_index() {
        let items: Vec<u32> = (0..100).collect();
        let serial: Vec<(usize, u32)> = items
            .chunks(7)
            .enumerate()
            .flat_map(|(ci, c)| c.iter().map(move |&x| (ci, x * 2)))
            .collect();
        for t in ["1", "4"] {
            let par = with_env_threads(t, || {
                par_chunks_map(&items, 7, |ci, chunk| chunk.iter().map(|&x| (ci, x * 2)).collect())
            });
            assert_eq!(par, serial, "FROTE_THREADS={t}");
        }
    }

    #[test]
    fn join_returns_both_and_runs_in_either_mode() {
        for t in ["1", "4"] {
            let (a, b) = with_env_threads(t, || join(|| 2 + 2, || "ok".to_string()));
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[9u8], |&x| x + 1), vec![10]);
        assert!(par_chunks_map(&empty, 4, |_, c| c.to_vec()).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        par_chunks_map(&[1, 2, 3], 0, |_, c| c.to_vec());
    }

    #[test]
    fn par_blocks_map_matches_serial_and_passes_block_index() {
        let serial: Vec<(usize, usize)> = (0..100)
            .step_by(7)
            .enumerate()
            .flat_map(|(bi, s)| (s..(s + 7).min(100)).map(move |i| (bi, i * 3)))
            .collect();
        for t in ["1", "4"] {
            let par = with_env_threads(t, || {
                par_blocks_map(100, 7, |bi, rows| rows.map(|i| (bi, i * 3)).collect())
            });
            assert_eq!(par, serial, "FROTE_THREADS={t}");
        }
        assert!(par_blocks_map(0, 5, |_, r| r.collect::<Vec<_>>()).is_empty());
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        par_blocks_map(3, 0, |_, r| r.collect::<Vec<_>>());
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            with_env_threads("4", || {
                par_map(&[1, 2, 3, 4, 5, 6, 7, 8], |&x| {
                    if x == 5 {
                        panic!("item exploded");
                    }
                    x
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_on_global_pool() {
        let mut slots = vec![0usize; 4];
        with_env_threads("4", || {
            scope(|s| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    s.spawn(move || *slot = i + 1);
                }
            });
        });
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }
}
