//! Deterministic RNG stream splitting for parallel work.
//!
//! The FROTE reproduction promises bit-identical outputs for a fixed seed at
//! *any* thread count. Sequentially threading one RNG through a loop breaks
//! that promise the moment iterations run concurrently, so every parallelized
//! randomized loop instead derives one independent child stream per work
//! *item* (never per chunk or per thread — those depend on `FROTE_THREADS`)
//! from a single split point. The serial fallback walks the same per-item
//! streams, so `threads() == 1` and `threads() == 64` produce the same bytes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A fixed split point deriving independent per-item RNG streams.
///
/// ```
/// use frote_par::SeedSplit;
/// use rand::rngs::StdRng;
/// use rand::{Rng, SeedableRng};
///
/// let mut parent = StdRng::seed_from_u64(42);
/// let split = SeedSplit::from_rng(&mut parent);
/// let a: f64 = split.stream(0).random();
/// let b: f64 = split.stream(0).random();
/// assert_eq!(a, b); // same item index -> same stream
/// let c: f64 = split.stream(1).random();
/// assert_ne!(a, c); // different items -> independent streams
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplit {
    base: u64,
}

impl SeedSplit {
    /// A split keyed directly by `seed` (for call sites configured with a
    /// plain seed rather than a live RNG, e.g. forest training).
    pub fn new(seed: u64) -> Self {
        SeedSplit { base: seed }
    }

    /// A split drawn from `rng`, consuming exactly one `next_u64` so the
    /// parent stream's position does not depend on how many child streams
    /// are later derived.
    pub fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        SeedSplit { base: rng.next_u64() }
    }

    /// The `index`-th child generator. Same `(split, index)` always yields
    /// the same stream; distinct indices yield decorrelated streams.
    pub fn stream(&self, index: u64) -> StdRng {
        StdRng::seed_from_stream(self.base, index)
    }

    /// The raw child seed for `index` (for APIs that take seeds, not RNGs).
    pub fn seed(&self, index: u64) -> u64 {
        let mut child = self.stream(index);
        child.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_index() {
        let split = SeedSplit::new(9);
        for i in 0..10u64 {
            let mut a = split.stream(i);
            let mut b = split.stream(i);
            for _ in 0..20 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn streams_differ_across_indices_and_bases() {
        let split = SeedSplit::new(9);
        let first: Vec<u64> = (0..64).map(|i| split.stream(i).next_u64()).collect();
        let mut unique = first.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), first.len(), "colliding child streams");
        let other = SeedSplit::new(10);
        assert_ne!(split.stream(0).next_u64(), other.stream(0).next_u64());
    }

    #[test]
    fn from_rng_advances_parent_exactly_once() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let split_a = SeedSplit::from_rng(&mut a);
        let split_b = SeedSplit::from_rng(&mut b);
        assert_eq!(split_a, split_b);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn child_draws_look_uniform() {
        let split = SeedSplit::new(1234);
        let n = 2_000u64;
        let mean: f64 = (0..n).map(|i| split.stream(i).random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "first draws biased: mean {mean}");
    }

    #[test]
    fn seed_helper_is_stable() {
        let split = SeedSplit::new(7);
        assert_eq!(split.seed(3), split.seed(3));
        assert_ne!(split.seed(3), split.seed(4));
    }
}
