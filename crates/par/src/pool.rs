//! A std-only scoped thread pool.
//!
//! Workers are long-lived OS threads popping type-erased jobs off one shared
//! queue. Borrowed (non-`'static`) closures are admitted through [`Scope`],
//! which guarantees — even under panics — that every spawned task finishes
//! before the scope returns, making the lifetime erasure sound (the same
//! construction as the classic `scoped_threadpool` crate and
//! `std::thread::scope`).
//!
//! Threads blocked in [`Scope`]'s wait *help*: they execute queued jobs
//! (possibly belonging to other scopes) instead of idling, so nested
//! parallelism — a parallel cross-validation fold training a parallel random
//! forest, say — cannot deadlock the pool.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use frote_obs::{Counter, Gauge};

type Job = Box<dyn FnOnce() + Send + 'static>;

// Pool metrics (see frote-obs). All thread-variant: task counts track the
// chunking (which scales with the thread count) and steals/depth track the
// schedule itself.
static TASKS: Counter = Counter::thread_variant("par.tasks");
static STEALS: Counter = Counter::thread_variant("par.steals");
static SCOPE_DEPTH: Gauge = Gauge::thread_variant("par.scope_depth");

/// Concurrently live scopes, feeding the `par.scope_depth` high-water mark.
/// Always maintained (one relaxed op per coarse-grained scope) so toggling
/// metrics mid-run can never unbalance it.
static LIVE_SCOPES: AtomicU64 = AtomicU64::new(0);

struct Shared {
    /// Pending jobs + the shutdown flag.
    queue: Mutex<(VecDeque<Job>, bool)>,
    /// Signalled on job submission and on shutdown.
    available: Condvar,
}

/// A fixed-size pool of worker threads executing scoped jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `n` workers (at least one).
    pub fn new(n: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
        });
        let workers = (0..n.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("frote-par-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, job: Job) {
        let mut guard = self.shared.queue.lock().expect("pool queue poisoned");
        guard.0.push_back(job);
        drop(guard);
        self.shared.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.shared.queue.lock().expect("pool queue poisoned").0.pop_front()
    }

    /// Runs `f` with a [`Scope`] on which borrowed tasks can be spawned.
    /// Returns `f`'s value once every spawned task has completed.
    ///
    /// # Panics
    ///
    /// If `f` or any spawned task panics, the panic is resumed on the calling
    /// thread — but only after all tasks of the scope have finished, so
    /// borrowed data is never used after free.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let depth = LIVE_SCOPES.fetch_add(1, Ordering::Relaxed) + 1;
        SCOPE_DEPTH.set_max(depth as f64);
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _env: PhantomData,
            _scope: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait_helping();
        LIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        let task_panic = scope.state.panic.lock().expect("panic slot poisoned").take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("pool queue poisoned").1 = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    // Resolved once per worker thread; the set of names is bounded by the
    // pool size, and executions only count while metrics are enabled.
    let executed = frote_obs::leaked_counter(
        format!("par.worker.{index}.tasks"),
        frote_obs::Variance::ThreadVariant,
    );
    loop {
        let job = {
            let mut guard = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break job;
                }
                if guard.1 {
                    return;
                }
                guard = shared.available.wait(guard).expect("pool queue poisoned");
            }
        };
        // Jobs never unwind: Scope::spawn wraps the user closure in
        // catch_unwind and stores the payload for the scope owner.
        job();
        executed.inc();
    }
}

#[derive(Default)]
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: Mutex<usize>,
    done: Condvar,
    /// First captured task panic, resumed by `scope` after the wait.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A spawning handle tied to one [`ThreadPool::scope`] invocation. Tasks may
/// borrow anything that outlives the scope (`'env`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `f` for execution on the pool.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        TASKS.inc();
        *self.state.pending.lock().expect("scope state poisoned") += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            let mut pending = state.pending.lock().expect("scope state poisoned");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: `scope` (and `wait_helping`) block until `pending == 0`,
        // i.e. until this closure has run to completion, before control
        // returns past `'env`'s region — so erasing the lifetime to `'static`
        // never lets the closure outlive its borrows.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.submit(task);
    }

    /// Blocks until every task of this scope has finished, executing queued
    /// pool jobs (of any scope) while waiting.
    fn wait_helping(&self) {
        loop {
            if let Some(job) = self.pool.try_pop() {
                STEALS.inc();
                job();
                continue;
            }
            let pending = self.state.pending.lock().expect("scope state poisoned");
            if *pending == 0 {
                return;
            }
            // A job may land in the queue while we sleep on this scope's
            // condvar; the timeout bounds how long we could miss it, and the
            // loop re-polls the queue, so nested scopes cannot deadlock.
            let (guard, _) = self
                .state
                .done
                .wait_timeout(pending, Duration::from_millis(1))
                .expect("scope state poisoned");
            if *guard == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_borrowed_tasks() {
        let pool = ThreadPool::new(4);
        let mut results = vec![0usize; 8];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        let out = pool.scope(|s| {
            for _ in 0..5 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..4 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "task panic must propagate");
        assert_eq!(finished.load(Ordering::Relaxed), 4, "siblings still ran to completion");
        // The pool remains usable after a panicked scope.
        let ok = pool.scope(|_| 1 + 1);
        assert_eq!(ok, 2);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    // Each outer task opens its own scope on the same pool;
                    // with only 2 workers this requires waiting threads to
                    // help execute queued jobs.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.n_workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let counter = Arc::clone(&counter);
            pool.scope(move |s| {
                for _ in 0..10 {
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        drop(pool); // must not hang
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.n_workers(), 1);
        let v = pool.scope(|s| {
            s.spawn(|| {});
            7
        });
        assert_eq!(v, 7);
    }
}
