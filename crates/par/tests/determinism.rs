//! Property tests for the runtime's determinism contract: helper outputs are
//! bit-identical across `FROTE_THREADS ∈ {1, 2, 7}`, including randomized
//! closures driven by per-item [`SeedSplit`] streams.

use frote_par::test_support::with_threads;
use frote_par::{par_chunks_map, par_map, SeedSplit};
use proptest::prelude::*;
use rand::Rng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pure closures: par_map output equals the serial map at every thread
    /// count, bit for bit.
    #[test]
    fn par_map_bit_identical_across_thread_counts(
        items in proptest::collection::vec(-1.0e6..1.0e6f64, 0..200),
    ) {
        let f = |&x: &f64| (x.sin() * 1e9).to_bits();
        let reference: Vec<u64> = items.iter().map(f).collect();
        for t in THREAD_COUNTS {
            let got = with_threads(t, || par_map(&items, f));
            prop_assert_eq!(&got, &reference, "FROTE_THREADS={}", t);
        }
    }

    /// Randomized closures: per-item SeedSplit streams make outputs
    /// thread-count-invariant even though every item draws random numbers.
    #[test]
    fn seeded_par_map_bit_identical_across_thread_counts(
        seed in 0u64..u64::MAX,
        n in 0usize..150,
    ) {
        let split = SeedSplit::new(seed);
        let items: Vec<u64> = (0..n as u64).collect();
        let f = |&i: &u64| {
            let mut rng = split.stream(i);
            let a: f64 = rng.random();
            let b: f64 = rng.random_range(-3.0..3.0);
            (a.to_bits(), b.to_bits())
        };
        let reference: Vec<(u64, u64)> = items.iter().map(f).collect();
        for t in THREAD_COUNTS {
            let got = with_threads(t, || par_map(&items, f));
            prop_assert_eq!(&got, &reference, "FROTE_THREADS={}", t);
        }
    }

    /// Fixed-size chunking: chunk boundaries and chunk indices seen by the
    /// closure are independent of the thread count.
    #[test]
    fn par_chunks_map_bit_identical_across_thread_counts(
        seed in 0u64..u64::MAX,
        n in 0usize..300,
        chunk in 1usize..40,
    ) {
        let split = SeedSplit::new(seed);
        let items: Vec<u32> = (0..n as u32).collect();
        let f = |ci: usize, chunk: &[u32]| -> Vec<u64> {
            let mut rng = split.stream(ci as u64);
            chunk.iter().map(|&x| u64::from(x) ^ rng.next_u64()).collect()
        };
        use rand::RngCore;
        let mut reference = Vec::new();
        for (ci, c) in items.chunks(chunk).enumerate() {
            reference.extend(f(ci, c));
        }
        for t in THREAD_COUNTS {
            let got = with_threads(t, || par_chunks_map(&items, chunk, f));
            prop_assert_eq!(&got, &reference, "FROTE_THREADS={}", t);
        }
    }

    /// The index-range variant obeys the same contract: fixed block
    /// boundaries, block-order concatenation, thread-count-invariant.
    #[test]
    fn par_blocks_map_bit_identical_across_thread_counts(
        seed in 0u64..u64::MAX,
        n in 0usize..500,
        block in 1usize..64,
    ) {
        use rand::RngCore;
        let split = SeedSplit::new(seed);
        let f = |bi: usize, rows: std::ops::Range<usize>| -> Vec<u64> {
            let mut rng = split.stream(bi as u64);
            rows.map(|i| i as u64 ^ rng.next_u64()).collect()
        };
        let mut reference = Vec::new();
        for (bi, start) in (0..n).step_by(block).enumerate() {
            reference.extend(f(bi, start..(start + block).min(n)));
        }
        for t in THREAD_COUNTS {
            let got = with_threads(t, || frote_par::par_blocks_map(n, block, f));
            prop_assert_eq!(&got, &reference, "FROTE_THREADS={}", t);
        }
    }
}

#[test]
fn join_results_match_serial_execution() {
    let compute = || {
        frote_par::join(
            || (0..1000u64).map(|i| i.wrapping_mul(i)).sum::<u64>(),
            || (0..1000u64).map(|i| i.rotate_left(7)).fold(0, u64::wrapping_add),
        )
    };
    let reference = with_threads(1, compute);
    for t in [2, 7] {
        assert_eq!(with_threads(t, compute), reference, "FROTE_THREADS={t}");
    }
}
