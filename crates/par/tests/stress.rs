//! Loom-free stress tests for the pool: many small scopes in tight
//! succession, panic propagation under load, and clean shutdown.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use frote_par::ThreadPool;

#[test]
fn many_small_scopes_complete_and_stay_ordered() {
    let pool = ThreadPool::new(4);
    for round in 0..500 {
        let mut slots = vec![0usize; 5];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = round + i);
            }
        });
        let expect: Vec<usize> = (0..5).map(|i| round + i).collect();
        assert_eq!(slots, expect, "round {round}");
    }
}

#[test]
fn interleaved_scopes_from_many_threads() {
    let pool = Arc::new(ThreadPool::new(3));
    let total = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    pool.scope(|s| {
                        for _ in 0..3 {
                            let total = Arc::clone(&total);
                            s.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("driver thread");
    }
    assert_eq!(total.load(Ordering::Relaxed), 6 * 100 * 3);
}

#[test]
fn panics_propagate_without_poisoning_the_pool() {
    let pool = ThreadPool::new(2);
    let survivors = AtomicUsize::new(0);
    for round in 0..50 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("round {round} bomb"));
                s.spawn(|| {
                    survivors.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "round {round}: panic must propagate");
    }
    // Every non-panicking sibling still ran, and the pool still works.
    assert_eq!(survivors.load(Ordering::Relaxed), 50);
    assert_eq!(pool.scope(|_| 42), 42);
}

#[test]
fn shutdown_with_queued_work_drains_before_join() {
    // Drop the pool immediately after a scope that queued plenty of work;
    // scope waits for its tasks, so drop only has to join idle workers.
    for _ in 0..20 {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        drop(pool); // must not hang or leak workers
    }
}

#[test]
fn deep_nesting_does_not_deadlock() {
    let pool = ThreadPool::new(2);
    fn nest(pool: &ThreadPool, depth: usize, counter: &AtomicUsize) {
        if depth == 0 {
            counter.fetch_add(1, Ordering::Relaxed);
            return;
        }
        pool.scope(|s| {
            for _ in 0..2 {
                s.spawn(move || nest(pool, depth - 1, counter));
            }
        });
    }
    let counter = AtomicUsize::new(0);
    nest(&pool, 5, &counter);
    assert_eq!(counter.load(Ordering::Relaxed), 32);
}
