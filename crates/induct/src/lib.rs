//! # frote-induct
//!
//! Boolean rule-set induction for the FROTE (MLSys 2022) reproduction — the
//! stand-in for BRCG (Dash et al. 2018, "Boolean decision rules via column
//! generation"), which the paper uses to extract a rule-set explanation of
//! the initial model before perturbing it into feedback rules (§5.1).
//!
//! BRCG solves an IP by column generation; at reproduction scale a greedy
//! sequential-covering learner with beam search over conjunctions produces
//! rule sets of the same form (DNF over `(feature, op, value)` predicates
//! with few conditions) and feeds the identical downstream protocol, which
//! only needs *plausible, model-derived* rules to perturb (DESIGN.md §3).
//!
//! ```
//! use frote_data::synth::{DatasetKind, SynthConfig};
//! use frote_induct::{InductParams, RuleInducer};
//! use frote_ml::{forest::RandomForestTrainer, TrainAlgorithm};
//!
//! let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
//! let model = RandomForestTrainer::default().train(&ds);
//! let rules = RuleInducer::new(InductParams::default()).explain(&ds, model.as_ref());
//! assert!(!rules.is_empty());
//! // Every rule is a valid clause over the schema with a deterministic class.
//! for r in &rules {
//!     r.validate(ds.schema()).unwrap();
//! }
//! ```

#![warn(missing_docs)]

mod beam;
mod inducer;

pub use beam::CandidatePool;
pub use inducer::{InductParams, RuleInducer};
