//! Candidate predicate pools for beam search.

use frote_data::stats::NumericStats;
use frote_data::{Column, Dataset, FeatureKind, Value};
use frote_rules::{Op, Predicate};

/// Number of quantile thresholds generated per numeric feature.
const N_THRESHOLDS: usize = 8;

/// The pool of primitive predicates beam search composes into conjunctions.
///
/// - categorical feature `f` with vocabulary `V`: `f = v` and `f != v` for
///   every `v ∈ V` (the `!=` forms are kept only for small vocabularies
///   where they are informative),
/// - numeric feature `f`: `f <= q` and `f > q` at a fixed number of quantiles
///   of the training column.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    predicates: Vec<Predicate>,
}

impl CandidatePool {
    /// Builds the pool from a dataset.
    pub fn build(ds: &Dataset) -> CandidatePool {
        let mut predicates = Vec::new();
        for j in 0..ds.n_features() {
            match (ds.column(j), ds.schema().feature(j).kind()) {
                (Column::Numeric(v), _) => {
                    for t in quantile_thresholds(v) {
                        predicates.push(Predicate::new(j, Op::Le, Value::Num(t)));
                        predicates.push(Predicate::new(j, Op::Gt, Value::Num(t)));
                    }
                }
                (Column::Categorical(_), FeatureKind::Categorical { categories }) => {
                    for c in 0..categories.len() as u32 {
                        predicates.push(Predicate::new(j, Op::Eq, Value::Cat(c)));
                        if categories.len() <= 5 {
                            predicates.push(Predicate::new(j, Op::Ne, Value::Cat(c)));
                        }
                    }
                }
                _ => unreachable!("column/schema kind mismatch"),
            }
        }
        CandidatePool { predicates }
    }

    /// The candidate predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the pool is empty (zero-feature datasets only).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }
}

/// Quantile cut points of a numeric column (deduplicated, excludes the
/// extremes so every threshold actually splits).
fn quantile_thresholds(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let stats = NumericStats::of(values);
    if stats.range() == 0.0 {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite feature values"));
    let n = sorted.len();
    let mut out = Vec::with_capacity(N_THRESHOLDS);
    for k in 1..=N_THRESHOLDS {
        let idx = (k * n) / (N_THRESHOLDS + 1);
        let t = sorted[idx.min(n - 1)];
        if t > sorted[0] && t < sorted[n - 1] && out.last() != Some(&t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    fn ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into(), "r".into()])
            .build();
        let mut d = Dataset::new(schema);
        for i in 0..100 {
            d.push_row(&[Value::Num(i as f64), Value::Cat((i % 3) as u32)], 0).unwrap();
        }
        d
    }

    #[test]
    fn pool_covers_both_kinds() {
        let pool = CandidatePool::build(&ds());
        assert!(!pool.is_empty());
        let has_numeric = pool.predicates().iter().any(|p| p.feature() == 0);
        let has_cat_eq = pool.predicates().iter().any(|p| p.feature() == 1 && p.op() == Op::Eq);
        let has_cat_ne = pool.predicates().iter().any(|p| p.feature() == 1 && p.op() == Op::Ne);
        assert!(has_numeric && has_cat_eq && has_cat_ne);
    }

    #[test]
    fn all_candidates_validate() {
        let d = ds();
        let pool = CandidatePool::build(&d);
        for p in pool.predicates() {
            p.validate(d.schema()).unwrap();
        }
        assert_eq!(pool.len(), pool.predicates().len());
    }

    #[test]
    fn constant_numeric_column_yields_no_thresholds() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for _ in 0..10 {
            d.push_row(&[Value::Num(5.0)], 0).unwrap();
        }
        let pool = CandidatePool::build(&d);
        assert!(pool.is_empty());
    }

    #[test]
    fn thresholds_strictly_inside_range() {
        let ts = quantile_thresholds(&(0..50).map(f64::from).collect::<Vec<_>>());
        assert!(!ts.is_empty());
        for t in &ts {
            assert!(*t > 0.0 && *t < 49.0);
        }
        // Sorted ascending and unique.
        for w in ts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
