//! Greedy sequential-covering rule induction with beam search.

use frote_data::Dataset;
use frote_ml::Classifier;
use frote_rules::{Clause, FeedbackRule, Predicate};

use crate::beam::CandidatePool;

/// Induction hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InductParams {
    /// Maximum rules extracted per class.
    pub max_rules_per_class: usize,
    /// Maximum conditions per rule (the paper notes feedback rules favour
    /// "smaller numbers of conditions").
    pub max_conditions: usize,
    /// Beam width of the conjunction search.
    pub beam_width: usize,
    /// Minimum (absolute) coverage a rule must retain.
    pub min_coverage: usize,
    /// Stop refining once precision on the residual reaches this.
    pub target_precision: f64,
}

impl Default for InductParams {
    fn default() -> Self {
        InductParams {
            max_rules_per_class: 4,
            max_conditions: 3,
            beam_width: 5,
            min_coverage: 10,
            target_precision: 0.9,
        }
    }
}

/// Greedy rule-set learner; see the crate docs for the BRCG substitution
/// rationale.
#[derive(Debug, Clone, Default)]
pub struct RuleInducer {
    params: InductParams,
}

impl RuleInducer {
    /// Creates an inducer.
    pub fn new(params: InductParams) -> Self {
        RuleInducer { params }
    }

    /// The parameters.
    pub fn params(&self) -> &InductParams {
        &self.params
    }

    /// Extracts a rule-set explanation of `model` on `ds` (rules predict the
    /// *model's* labels, which is what the §5.1 protocol perturbs).
    pub fn explain(&self, ds: &Dataset, model: &dyn Classifier) -> Vec<FeedbackRule> {
        let predicted = model.predict_dataset(ds);
        self.induce(ds, &predicted)
    }

    /// Learns rules that describe the given `labels` over `ds` (sequential
    /// covering per class, beam search per rule).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != ds.n_rows()`.
    pub fn induce(&self, ds: &Dataset, labels: &[u32]) -> Vec<FeedbackRule> {
        assert_eq!(labels.len(), ds.n_rows(), "one label per row");
        let pool = CandidatePool::build(ds);
        let mut rules = Vec::new();
        for class in 0..ds.n_classes() as u32 {
            let mut residual: Vec<bool> = labels.iter().map(|&l| l == class).collect();
            for _ in 0..self.params.max_rules_per_class {
                if residual.iter().filter(|&&r| r).count() < self.params.min_coverage {
                    break;
                }
                match self.find_rule(ds, labels, class, &residual, &pool) {
                    None => break,
                    Some(clause) => {
                        // Mark covered positives as explained.
                        for i in clause.coverage(ds) {
                            residual[i] = false;
                        }
                        rules.push(FeedbackRule::deterministic(clause, class));
                    }
                }
            }
        }
        rules
    }

    /// Beam search for one conjunction maximizing precision for `class` with
    /// coverage of residual positives.
    fn find_rule(
        &self,
        ds: &Dataset,
        labels: &[u32],
        class: u32,
        residual: &[bool],
        pool: &CandidatePool,
    ) -> Option<Clause> {
        #[derive(Clone)]
        struct Beam {
            preds: Vec<Predicate>,
            score: f64,
            precision: f64,
            coverage: usize,
        }
        let score_clause = |preds: &[Predicate]| -> Option<(f64, f64, usize)> {
            let mut covered = 0usize;
            let mut correct = 0usize;
            let mut residual_hits = 0usize;
            for i in 0..ds.n_rows() {
                let hit = preds.iter().all(|p| p.eval(ds.value(i, p.feature())));
                if hit {
                    covered += 1;
                    if labels[i] == class {
                        correct += 1;
                    }
                    if residual[i] {
                        residual_hits += 1;
                    }
                }
            }
            if covered < self.params.min_coverage || residual_hits == 0 {
                return None;
            }
            // Laplace-smoothed precision, lightly rewarding residual
            // coverage so successive rules explain new regions.
            let precision = (correct as f64 + 1.0) / (covered as f64 + 2.0);
            let score = precision + 0.05 * (residual_hits as f64 / ds.n_rows() as f64);
            Some((score, correct as f64 / covered as f64, covered))
        };

        let mut beams: Vec<Beam> = vec![Beam {
            preds: Vec::new(),
            score: f64::NEG_INFINITY,
            precision: 0.0,
            coverage: ds.n_rows(),
        }];
        let mut best: Option<Beam> = None;
        for _ in 0..self.params.max_conditions {
            let mut next: Vec<Beam> = Vec::new();
            for beam in &beams {
                for p in pool.predicates() {
                    // At most one condition per (feature, bound direction):
                    // numeric features may carry one lower and one upper
                    // bound (interval rules, as BRCG produces); categorical
                    // features carry a single condition.
                    if beam
                        .preds
                        .iter()
                        .any(|q| q.feature() == p.feature() && same_direction(q.op(), p.op()))
                    {
                        continue;
                    }
                    let mut preds = beam.preds.clone();
                    preds.push(*p);
                    if let Some((score, precision, coverage)) = score_clause(&preds) {
                        next.push(Beam { preds, score, precision, coverage });
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            next.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
            next.truncate(self.params.beam_width);
            if best.as_ref().is_none_or(|b| next[0].score > b.score) {
                best = Some(next[0].clone());
            }
            if next[0].precision >= self.params.target_precision {
                break;
            }
            beams = next;
        }
        best.filter(|b| !b.preds.is_empty() && b.coverage >= self.params.min_coverage)
            .map(|b| Clause::new(b.preds))
    }
}

/// Whether two operators on the same feature constrain the same direction
/// (making the pair redundant rather than an interval).
fn same_direction(a: frote_rules::Op, b: frote_rules::Op) -> bool {
    use frote_rules::Op;
    let dir = |op: Op| match op {
        Op::Le | Op::Lt => 0u8, // upper bound
        Op::Ge | Op::Gt => 1,   // lower bound
        Op::Eq | Op::Ne => 2,   // categorical / pinning
    };
    dir(a) == dir(b) || dir(a) == 2 || dir(b) == 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::{Schema, Value};
    use frote_ml::forest::RandomForestTrainer;
    use frote_ml::TrainAlgorithm;

    /// Labels follow a crisp single-predicate concept.
    fn crisp_ds() -> Dataset {
        let schema = Schema::builder("y", vec!["neg".into(), "pos".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut d = Dataset::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let label = u32::from(x < 50.0);
            d.push_row(&[Value::Num(x), Value::Cat((i % 2) as u32)], label).unwrap();
        }
        d
    }

    #[test]
    fn recovers_a_crisp_threshold_concept() {
        let ds = crisp_ds();
        let rules = RuleInducer::default().induce(&ds, ds.labels());
        // Some rule for class 1 must cover mostly the x < 50 region.
        let pos_rules: Vec<_> = rules.iter().filter(|r| r.dist().mode() == 1).collect();
        assert!(!pos_rules.is_empty(), "no rules for the positive class: {rules:?}");
        let r = pos_rules[0];
        let cov = r.coverage(&ds);
        let correct = cov.iter().filter(|&&i| ds.label(i) == 1).count();
        let precision = correct as f64 / cov.len() as f64;
        assert!(precision > 0.9, "precision {precision}");
    }

    #[test]
    fn rules_validate_and_have_few_conditions() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 500, ..Default::default() });
        let model = RandomForestTrainer::default().train(&ds);
        let rules = RuleInducer::default().explain(&ds, model.as_ref());
        assert!(!rules.is_empty());
        for r in &rules {
            r.validate(ds.schema()).unwrap();
            assert!(r.clause().len() <= 3);
            assert!(r.coverage_count(&ds) >= 10);
        }
    }

    #[test]
    fn rules_agree_with_model_predictions() {
        let ds = DatasetKind::Mushroom.generate(&SynthConfig { n_rows: 600, ..Default::default() });
        let model = RandomForestTrainer::default().train(&ds);
        let predicted = model.predict_dataset(&ds);
        let rules = RuleInducer::default().induce(&ds, &predicted);
        for r in &rules {
            let cov = r.coverage(&ds);
            let agree = cov.iter().filter(|&&i| predicted[i] == r.dist().mode()).count();
            let precision = agree as f64 / cov.len().max(1) as f64;
            assert!(precision >= 0.5, "rule {r} precision {precision}");
        }
    }

    #[test]
    fn sequential_covering_diversifies_rules() {
        let ds = crisp_ds();
        let params = InductParams { max_rules_per_class: 3, ..Default::default() };
        let rules = RuleInducer::new(params).induce(&ds, ds.labels());
        // No two rules for the same class should be identical.
        for (i, a) in rules.iter().enumerate() {
            for b in &rules[i + 1..] {
                assert!(a.clause() != b.clause() || a.dist() != b.dist());
            }
        }
    }

    #[test]
    fn min_coverage_respected() {
        let ds = crisp_ds();
        let params = InductParams { min_coverage: 40, ..Default::default() };
        let rules = RuleInducer::new(params).induce(&ds, ds.labels());
        for r in &rules {
            assert!(r.coverage_count(&ds) >= 40);
        }
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_arity_checked() {
        let ds = crisp_ds();
        RuleInducer::default().induce(&ds, &[0, 1]);
    }

    #[test]
    fn direction_logic() {
        use frote_rules::Op;
        assert!(same_direction(Op::Le, Op::Lt));
        assert!(same_direction(Op::Ge, Op::Gt));
        assert!(!same_direction(Op::Le, Op::Ge));
        assert!(!same_direction(Op::Lt, Op::Gt));
        assert!(same_direction(Op::Eq, Op::Le));
        assert!(same_direction(Op::Ne, Op::Ne));
    }

    #[test]
    fn learns_interval_concepts() {
        // Label 1 iff x in [60, 140): requires a lower AND an upper bound on
        // the same feature.
        let schema = Schema::builder("y", vec!["out".into(), "in".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..200 {
            let x = i as f64;
            ds.push_row(&[Value::Num(x)], u32::from((60.0..140.0).contains(&x))).unwrap();
        }
        let rules = RuleInducer::default().induce(&ds, ds.labels());
        let interval = rules.iter().find(|r| r.dist().mode() == 1 && r.clause().len() == 2);
        assert!(interval.is_some(), "no interval rule induced: {rules:?}");
        let r = interval.unwrap();
        let cov = r.coverage(&ds);
        let precision = cov.iter().filter(|&&i| ds.label(i) == 1).count() as f64 / cov.len() as f64;
        assert!(precision > 0.85, "interval rule precision {precision}");
    }
}
